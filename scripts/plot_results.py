#!/usr/bin/env python3
"""Plot the paper-reproduction figures from results/sweep.csv.

Usage:
    build/bench/export_results          # writes results/sweep.csv
    python3 scripts/plot_results.py     # writes results/*.png

Also summarizes any results/manifest_*.json run manifests found
(schema v1, written by the benches via obs::Manifest): bench, git
describe, knobs, headline results, and histogram percentiles.

Requires matplotlib; degrades to printing summary tables without it.
"""

import csv
import glob
import json
import os
import sys
from collections import defaultdict

RESULTS = os.environ.get("MGMEE_RESULTS_DIR", "results")

SCHEME_ORDER = [
    "Conventional",
    "Adaptive",
    "CommonCTR",
    "Multi(CTR)-only",
    "Ours",
    "BMF&Unused",
    "BMF&Unused+Ours",
]


def load():
    path = os.path.join(RESULTS, "sweep.csv")
    rows = []
    with open(path) as f:
        for row in csv.DictReader(f):
            row["norm_exec"] = float(row["norm_exec"])
            row["norm_traffic"] = float(row["norm_traffic"])
            row["sec_misses"] = int(row["sec_misses"])
            rows.append(row)
    return rows


def summarize(rows):
    by_scheme = defaultdict(list)
    for row in rows:
        by_scheme[row["scheme"]].append(row)
    print(f"{'scheme':<20} {'exec':>8} {'traffic':>9} {'misses':>12}")
    for scheme in SCHEME_ORDER:
        rs = by_scheme.get(scheme)
        if not rs:
            continue
        exec_mean = sum(r["norm_exec"] for r in rs) / len(rs)
        traffic_mean = sum(r["norm_traffic"] for r in rs) / len(rs)
        miss_mean = sum(r["sec_misses"] for r in rs) / len(rs)
        print(f"{scheme:<20} {exec_mean:>7.3f}x {traffic_mean:>8.3f}x"
              f" {miss_mean:>12.0f}")
    return by_scheme


def plot(by_scheme):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; summary tables only")
        return

    # Figure 15-style CDF of normalized execution time.
    fig, ax = plt.subplots(figsize=(7, 4))
    for scheme in SCHEME_ORDER:
        rs = by_scheme.get(scheme)
        if not rs:
            continue
        xs = sorted(r["norm_exec"] for r in rs)
        ys = [i / (len(xs) - 1) if len(xs) > 1 else 1.0
              for i in range(len(xs))]
        ax.plot(xs, ys, label=scheme, linewidth=1.4)
    ax.set_xlabel("normalized execution time (vs unsecure)")
    ax.set_ylabel("CDF over scenarios")
    ax.legend(fontsize=8)
    ax.grid(alpha=0.3)
    fig.tight_layout()
    out = os.path.join(RESULTS, "fig15_cdf.png")
    fig.savefig(out, dpi=150)
    print("wrote", out)

    # Figure 16/18-style mean bars.
    fig, axes = plt.subplots(1, 3, figsize=(12, 3.6))
    metrics = [("norm_exec", "exec time"),
               ("norm_traffic", "traffic"),
               ("sec_misses", "security-cache misses")]
    for ax, (key, label) in zip(axes, metrics):
        names, values = [], []
        for scheme in SCHEME_ORDER:
            rs = by_scheme.get(scheme)
            if not rs:
                continue
            names.append(scheme)
            values.append(sum(r[key] for r in rs) / len(rs))
        if key == "sec_misses" and values:
            base = values[0]
            values = [v / base for v in values]
        ax.bar(range(len(names)), values, color="#5577aa")
        ax.set_xticks(range(len(names)))
        ax.set_xticklabels(names, rotation=35, ha="right",
                           fontsize=7)
        ax.set_title(label, fontsize=10)
        ax.grid(axis="y", alpha=0.3)
    fig.tight_layout()
    out = os.path.join(RESULTS, "fig16_18_means.png")
    fig.savefig(out, dpi=150)
    print("wrote", out)


def summarize_manifests():
    paths = sorted(glob.glob(os.path.join(RESULTS, "manifest_*.json")))
    if not paths:
        return
    print("\nrun manifests:")
    for path in paths:
        try:
            with open(path) as f:
                m = json.load(f)
        except (OSError, ValueError) as err:
            print(f"  {path}: unreadable ({err})")
            continue
        if m.get("schema_version") != 1:
            print(f"  {path}: unknown schema "
                  f"{m.get('schema_version')}, skipped")
            continue
        print(f"  {m['bench']} (git {m['git']})")
        for knob, value in m.get("knobs", {}).items():
            print(f"    {knob}={value}")
        for key, value in list(m.get("results", {}).items())[:8]:
            print(f"    {key}: {value}")
        for name, hist in m.get("histograms", {}).items():
            print(f"    {name}: n={hist['count']} p50<={hist['p50']}"
                  f" p90<={hist['p90']} p99<={hist['p99']}")
        if "trace" in m:
            print(f"    trace: {m['trace']['events']} events"
                  f" at {m['trace']['path']}")


def main():
    summarize_manifests()
    try:
        rows = load()
    except FileNotFoundError:
        print("run build/bench/export_results first", file=sys.stderr)
        return 1
    by_scheme = summarize(rows)
    plot(by_scheme)
    return 0


if __name__ == "__main__":
    sys.exit(main())
