#!/usr/bin/env python3
"""Check markdown links and heading anchors across the repo docs.

Usage: check_docs_links.py [file-or-dir ...]

Defaults to README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md and
docs/.  Stdlib only (CI-friendly).  For every markdown link:

  - `http(s)://` and `mailto:` targets are skipped (no network in CI);
  - relative file targets must exist (resolved against the linking
    file's directory);
  - `#anchor` fragments -- same-file or cross-file -- must match a
    heading in the target file, using GitHub's slugging rules
    (lowercase, punctuation stripped, spaces to hyphens).

Exits non-zero listing every broken link.
"""

import os
import re
import sys

DEFAULT_TARGETS = ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                   "ROADMAP.md", "docs"]

# [text](target) -- ignores images' leading '!' (same target rules).
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading):
    """GitHub's anchor slug for a heading line."""
    # Inline code/emphasis markers don't contribute to the slug.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    # Drop everything except word characters, spaces and hyphens.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_md_files(targets):
    files = []
    for target in targets:
        if os.path.isdir(target):
            for root, _dirs, names in os.walk(target):
                files.extend(os.path.join(root, n) for n in names
                             if n.endswith(".md"))
        elif os.path.isfile(target):
            files.append(target)
        else:
            print(f"warning: {target} not found, skipped",
                  file=sys.stderr)
    return sorted(set(files))


def parse_file(path):
    """Return (links as (lineno, target), anchors set) of one file."""
    links, anchors = [], set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            heading = HEADING_RE.match(line)
            if heading:
                anchors.add(github_slug(heading.group(2)))
            for match in LINK_RE.finditer(line):
                links.append((lineno, match.group(1)))
    return links, anchors


def main(argv):
    targets = argv if argv else DEFAULT_TARGETS
    files = collect_md_files(targets)
    if not files:
        sys.exit("no markdown files found")

    parsed = {path: parse_file(path) for path in files}
    # Anchor sets for files that are linked to but not being checked.
    anchor_cache = {path: anchors for path, (_, anchors)
                    in parsed.items()}

    def anchors_of(path):
        if path not in anchor_cache:
            anchor_cache[path] = parse_file(path)[1] \
                if path.endswith(".md") else set()
        return anchor_cache[path]

    broken = []
    for path, (links, _anchors) in parsed.items():
        base = os.path.dirname(path)
        for lineno, target in links:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                if github_slug(target[1:]) not in anchors_of(path) \
                        and target[1:] not in anchors_of(path):
                    broken.append((path, lineno, target,
                                   "anchor not found"))
                continue
            file_part, _, fragment = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                broken.append((path, lineno, target, "file not found"))
                continue
            if fragment and resolved.endswith(".md"):
                if github_slug(fragment) not in anchors_of(resolved) \
                        and fragment not in anchors_of(resolved):
                    broken.append((path, lineno, target,
                                   "anchor not found"))

    for path, lineno, target, why in broken:
        print(f"{path}:{lineno}: broken link '{target}' ({why})",
              file=sys.stderr)
    if broken:
        print(f"{len(broken)} broken link(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    total = sum(len(links) for links, _ in parsed.values())
    print(f"checked {total} links across {len(files)} markdown files: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
