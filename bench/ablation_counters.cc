/**
 * @file
 * Ablation: split-counter minor width (extension beyond the paper,
 * which assumes non-overflowing counters).
 *
 * Compact counters (VAULT / Morphable Counters, discussed in the
 * paper's related work) trade metadata footprint for periodic
 * overflow re-encryption.  Narrow minors overflow often; each
 * overflow re-encrypts everything the counter covers.  Coarse shared
 * counters bump once per unit rewrite instead of once per line, so
 * the multi-granular engine also changes the overflow economics --
 * this sweep quantifies that interaction.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/multigran_engine.hh"
#include "hetero/hetero_system.hh"
#include "mee/conventional_engine.hh"

using namespace mgmee;

namespace {

struct Outcome
{
    double norm;
    std::uint64_t overflows;
    std::uint64_t overflow_lines;
};

Outcome
runWith(const Scenario &sc, unsigned minor_bits, bool ours,
        const RunResult &unsec)
{
    TimingConfig timing;
    timing.parallel_walk = true;
    timing.minor_counter_bits = minor_bits;

    std::unique_ptr<TimingEngine> engine;
    if (ours) {
        MultiGranEngineConfig cfg;
        cfg.timing = timing;
        engine = std::make_unique<MultiGranEngine>(
            "ours", scenarioDataBytes(), cfg);
    } else {
        engine = std::make_unique<ConventionalEngine>(
            scenarioDataBytes(), timing);
    }
    HeteroSystem sys(buildDevices(sc, bench::envSeed(),
                                  bench::envScale()),
                     std::move(engine));
    sys.run();
    RunResult r;
    r.device_finish = sys.deviceFinishTimes();
    return {normalizedExecTime(r, unsec),
            sys.engine().stats().get("ctr_overflows"),
            sys.engine().stats().get("ctr_overflow_lines")};
}

} // namespace

int
main()
{
    // Write-heavy coarse scenario stresses counters hardest.
    const Scenario sc{"c3", "mcf", "sten", "sfrnn", "sfrnn"};
    const RunResult unsec = runScenario(sc, Scheme::Unsecure,
                                        bench::envSeed(),
                                        bench::envScale());

    std::printf("=== Ablation: split-counter minor width (scenario "
                "c3) ===\n");
    std::printf("%-12s %-14s %10s %11s %15s\n", "minor bits",
                "scheme", "exec", "overflows", "re-enc lines");
    for (unsigned bits : {0u, 6u, 3u, 2u, 1u}) {
        char label[16];
        if (bits == 0)
            std::snprintf(label, sizeof(label), "ideal");
        else
            std::snprintf(label, sizeof(label), "%u", bits);
        for (bool ours : {false, true}) {
            const Outcome o = runWith(sc, bits, ours, unsec);
            std::printf("%-12s %-14s %9.3fx %11llu %15llu\n", label,
                        ours ? "Ours" : "Conventional", o.norm,
                        static_cast<unsigned long long>(o.overflows),
                        static_cast<unsigned long long>(
                            o.overflow_lines));
        }
    }
    std::printf("\n(0 = the paper's non-overflowing counters; "
                "narrower minors overflow more often and each\n"
                "overflow re-encrypts the counter's coverage -- a "
                "whole unit for promoted counters.)\n");
    return 0;
}
