/**
 * @file
 * Heavy-traffic harness for the multi-tenant serving plane (the
 * mgmee-serve tentpole), in three phases:
 *
 *  1. *throughput* -- one loadgen thread per tenant hammers an
 *     in-process serve::Server through the same submit() path the
 *     socket front end uses, with a bounded in-flight window sized
 *     under the admission queue depth so the run is deterministically
 *     shed-free.  Reports aggregate and per-tenant request rates and
 *     per-tenant batch-latency p50/p99.  With MGMEE_ENFORCE_SERVE=1
 *     the aggregate rate must reach 1M req/s across >= 4 tenants
 *     (the ISSUE 9 acceptance target; off by default so CI boxes of
 *     any size only check correctness).
 *
 *  2. *determinism* -- replays a fixed workload against two fresh
 *     servers at 1 thread and at the configured thread count and
 *     hard-fails unless every tenant's reply-digest chain is
 *     bit-identical.
 *
 *  3. *fault campaign under load* -- hardcoded parameters: each
 *     tenant's stream injects one Tamper mid-run, after which the
 *     generator cycles a small working set until the engine flags
 *     the corruption.  Detection latency lands in deterministic
 *     ticks (baseline-exact) and wall nanoseconds (warn-only).
 *
 * Knobs: MGMEE_SERVE_TENANTS, MGMEE_SERVE_BATCH,
 * MGMEE_SERVE_QUEUE_DEPTH, MGMEE_SERVE_MEM_BYTES,
 * MGMEE_SERVE_REQUESTS (per tenant, default 262144), MGMEE_THREADS,
 * MGMEE_SEED, MGMEE_ENFORCE_SERVE.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/threads.hh"
#include "obs/manifest.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"

using namespace mgmee;
namespace wire = mgmee::serve::wire;

namespace {

/** Final digest per tenant for one complete run. */
std::vector<std::uint64_t>
runFixedWorkload(serve::Server &server, unsigned tenants,
                 std::uint64_t per_tenant, unsigned batch,
                 std::size_t mem_bytes, std::size_t tamper_at)
{
    std::vector<std::uint64_t> digests(tenants);
    std::vector<std::thread> threads;
    threads.reserve(tenants);
    for (unsigned t = 0; t < tenants; ++t) {
        threads.emplace_back([&, t] {
            serve::LoadgenConfig lg;
            lg.tenant = t;
            lg.seed = 42;
            lg.mem_bytes = mem_bytes;
            lg.batch = batch;
            lg.tamper_at = tamper_at;
            serve::Loadgen gen(lg);
            wire::RequestBatch b;
            while (gen.generated() < per_tenant) {
                gen.next(b);
                gen.absorb(server.submitSync(b));
            }
            digests[t] = gen.digest();
        });
    }
    for (std::thread &th : threads)
        th.join();
    return digests;
}

} // namespace

int
main()
{
    const Config &cfg = config();
    const unsigned tenants = cfg.serve_tenants;
    const unsigned batch = cfg.serve_batch;
    const std::uint64_t per_tenant =
        cfg.serve_requests ? cfg.serve_requests : 262144;

    obs::Manifest manifest("serve_throughput");
    manifest.set("tenants", tenants);
    manifest.set("batch", batch);
    manifest.set("requests_per_tenant", per_tenant);

    // ---- phase 1: shed-free throughput ---------------------------------
    //
    // Each tenant keeps `window` batches in flight; window * batch
    // stays under the admission bound, so zero sheds is a guaranteed
    // -- and asserted -- outcome, not a lucky one.
    std::printf("=== serve_throughput: %u tenants, batch %u, "
                "%llu req/tenant ===\n",
                tenants, batch,
                static_cast<unsigned long long>(per_tenant));
    serve::SessionConfig session = serve::SessionConfig::fromConfig(cfg);
    const unsigned window = std::max<std::uint64_t>(
        1, cfg.serve_queue_depth / batch / 2);
    double aggregate_rps = 0;
    std::uint64_t sheds = 0;
    {
        serve::Server server(session);
        std::vector<std::thread> drivers;
        drivers.reserve(tenants);
        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned t = 0; t < tenants; ++t) {
            drivers.emplace_back([&, t] {
                serve::LoadgenConfig lg;
                lg.tenant = t;
                lg.seed = cfg.seed;
                lg.mem_bytes = cfg.serve_mem_bytes;
                lg.batch = batch;
                serve::Loadgen gen(lg);
                std::vector<std::future<wire::BatchReply>> inflight;
                wire::RequestBatch b;
                while (gen.generated() < per_tenant) {
                    while (inflight.size() < window &&
                           gen.generated() < per_tenant) {
                        gen.next(b);
                        inflight.push_back(server.submit(b));
                    }
                    gen.absorb(inflight.front().get());
                    inflight.erase(inflight.begin());
                }
                for (auto &f : inflight)
                    gen.absorb(f.get());
            });
        }
        for (std::thread &th : drivers)
            th.join();
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        const std::uint64_t total = server.completedRequests();
        sheds = server.shedBatches();
        aggregate_rps = static_cast<double>(total) / secs;
        std::printf("phase1: %llu requests in %.3fs -> %.0f req/s "
                    "aggregate (%llu sheds)\n",
                    static_cast<unsigned long long>(total), secs,
                    aggregate_rps,
                    static_cast<unsigned long long>(sheds));
        manifest.set("phase1_seconds", secs);
        manifest.set("aggregate_req_per_sec", aggregate_rps);
        manifest.set("per_tenant_req_per_sec",
                     aggregate_rps / tenants);
        manifest.set("shed_batches", sheds);
        server.fillManifest(manifest);
        server.stop();
    }
    bool ok = true;
    if (sheds != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu sheds in a windowed run sized to "
                     "never shed\n",
                     static_cast<unsigned long long>(sheds));
        ok = false;
    }
    if (cfg.enforce_serve &&
        (tenants < 4 || aggregate_rps < 1e6)) {
        std::fprintf(stderr,
                     "FAIL: %.0f req/s across %u tenants "
                     "(need >= 1M across >= 4)\n",
                     aggregate_rps, tenants);
        ok = false;
    }

    // ---- phase 2: thread-count determinism -----------------------------
    //
    // Fixed parameters, independent of the knobs above, so the
    // digests are comparable against any environment.
    {
        serve::SessionConfig fixed;
        for (unsigned t = 0; t < 4; ++t) {
            serve::TenantConfig tc;
            tc.id = t;
            tc.key_seed = 7 + t;
            fixed.tenants.push_back(tc);
        }
        fixed.threads = 1;
        serve::Server one(fixed);
        const std::vector<std::uint64_t> base = runFixedWorkload(
            one, 4, 16384, 128, 32 * kChunkBytes, ~std::size_t{0});
        one.stop();

        fixed.threads = 0;  // the process default (MGMEE_THREADS)
        serve::Server many(fixed);
        const std::vector<std::uint64_t> wide = runFixedWorkload(
            many, 4, 16384, 128, 32 * kChunkBytes, ~std::size_t{0});
        many.stop();

        bool identical = base == wide;
        for (unsigned t = 0; t < 4; ++t)
            std::printf("phase2: tenant %u digest %016llx %s\n", t,
                        static_cast<unsigned long long>(base[t]),
                        base[t] == wide[t] ? "==" : "DIVERGED");
        manifest.set("bit_identical", identical);
        if (!identical) {
            std::fprintf(stderr, "FAIL: thread-count determinism\n");
            ok = false;
        }
    }

    // ---- phase 3: fault campaign under load ----------------------------
    //
    // Hardcoded parameters and a deterministic post-injection access
    // pattern make the tick-latency histogram baseline-exact.
    {
        serve::SessionConfig fixed;
        for (unsigned t = 0; t < 4; ++t) {
            serve::TenantConfig tc;
            tc.id = t;
            tc.key_seed = 7 + t;
            fixed.tenants.push_back(tc);
        }
        serve::Server server(fixed);
        runFixedWorkload(server, 4, 16384, 128, 32 * kChunkBytes,
                         8192);
        // Pull the per-tenant detection counters out of the registry
        // before teardown.  The counters are process-global, but no
        // earlier phase injects faults, so these are phase-3 totals.
        std::uint64_t detected = 0;
        for (unsigned t = 0; t < 4; ++t) {
            const StatGroup g = StatRegistry::instance().snapshot(
                "serve.t" + std::to_string(t) + ".core");
            auto it = g.counters().find("detected");
            if (it != g.counters().end())
                detected += it->second;
        }
        server.fillManifest(manifest, "campaign.");
        server.stop();
        std::printf("phase3: %llu/4 injected faults detected\n",
                    static_cast<unsigned long long>(detected));
        manifest.set("faults_injected", std::uint64_t{4});
        manifest.set("faults_detected", detected);
        if (detected != 4) {
            std::fprintf(stderr,
                         "FAIL: injected 4 faults, detected %llu\n",
                         static_cast<unsigned long long>(detected));
            ok = false;
        }
    }

    obs::ManifestReporter::finalize(manifest);
    return ok ? 0 : 1;
}
