/**
 * @file
 * Figure 19 reproduction over the 11 selected scenarios (Table 4):
 *  (a) normalized execution time per scheme per scenario;
 *  (b) stream-chunk composition of each scenario;
 *  (c) per-device normalized execution of Ours vs Conventional.
 *
 * Paper anchors: improvement grows from the ff group (5.9%) to the
 * cc group (24.1%); per-device average improvements CPU 24.2%,
 * GPU 22.7%, NPU 9.5%; scenario stream-chunk mixes range 22.1-60.7%
 * (64B) and 34.8-71.9% (32KB).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/registry.hh"

using namespace mgmee;

int
main()
{
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();
    const auto scenarios = selectedScenarios();

    // ---- (a) normalized execution time ----------------------------
    std::printf("=== Figure 19 (a): normalized execution time, "
                "selected scenarios ===\n");
    std::printf("%-5s %13s %13s %13s %13s\n", "id", "Conventional",
                "Multi(CTR)", "Ours", "BMF&U+Ours");
    double group_gain[4] = {0, 0, 0, 0};
    int group_n[4] = {0, 0, 0, 0};
    std::vector<double> per_dev_conv(4, 0), per_dev_ours(4, 0);

    for (const Scenario &sc : scenarios) {
        const auto unsec =
            runScenarioMemo(sc, Scheme::Unsecure, seed, scale);
        const auto conv =
            runScenarioMemo(sc, Scheme::Conventional, seed, scale);
        const auto ctr =
            runScenarioMemo(sc, Scheme::MultiCtrOnly, seed, scale);
        const auto ours = runScenarioMemo(sc, Scheme::Ours, seed, scale);
        const auto combo =
            runScenarioMemo(sc, Scheme::BmfUnusedOurs, seed, scale);

        const double n_conv = normalizedExecTime(conv, unsec);
        const double n_ours = normalizedExecTime(ours, unsec);
        std::printf("%-5s %12.3fx %12.3fx %12.3fx %12.3fx\n",
                    sc.id.c_str(), n_conv,
                    normalizedExecTime(ctr, unsec), n_ours,
                    normalizedExecTime(combo, unsec));

        const int group = sc.id[0] == 'f' && sc.id[1] == 'f' ? 0
                          : sc.id[0] == 'f'                  ? 1
                          : sc.id[0] == 'c' && sc.id[1] == 'c'
                              ? 3
                              : 2;
        group_gain[group] += 1.0 - n_ours / n_conv;
        group_n[group] += 1;

        const auto pd_conv = normalizedPerDevice(conv, unsec);
        const auto pd_ours = normalizedPerDevice(ours, unsec);
        for (int d = 0; d < 4; ++d) {
            per_dev_conv[d] += pd_conv[d];
            per_dev_ours[d] += pd_ours[d];
        }
    }

    std::printf("\nGroup improvement of Ours vs Conventional "
                "(paper: ff 5.9%% ... cc 24.1%%):\n");
    const char *gname[4] = {"ff", "f", "c", "cc"};
    for (int g = 0; g < 4; ++g) {
        std::printf("  %-3s %5.1f%%\n", gname[g],
                    100.0 * group_gain[g] / group_n[g]);
    }

    // ---- (b) stream-chunk composition ------------------------------
    std::printf("\n=== Figure 19 (b): stream-chunk mix per scenario "
                "===\n");
    std::printf("%-5s %7s %7s %7s %7s\n", "id", "64B", "512B", "4KB",
                "32KB");
    for (const Scenario &sc : scenarios) {
        TraceProfile sum;
        unsigned slot = 0;
        for (const std::string &wl :
             {sc.cpu, sc.gpu, sc.npu1, sc.npu2}) {
            const auto p = profileTrace(generateTrace(
                findWorkload(wl), slot * (Addr{64} << 20),
                seed * 4 + slot, scale));
            sum.lines64 += p.lines64;
            sum.lines512 += p.lines512;
            sum.lines4k += p.lines4k;
            sum.lines32k += p.lines32k;
            ++slot;
        }
        const double total = static_cast<double>(
            sum.lines64 + sum.lines512 + sum.lines4k + sum.lines32k);
        std::printf("%-5s %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
                    sc.id.c_str(), 100 * sum.lines64 / total,
                    100 * sum.lines512 / total,
                    100 * sum.lines4k / total,
                    100 * sum.lines32k / total);
    }

    // ---- (c) per-device execution ----------------------------------
    std::printf("\n=== Figure 19 (c): per-device improvement of Ours "
                "(avg over 11 scenarios) ===\n");
    const char *dev[4] = {"CPU", "GPU", "NPU1", "NPU2"};
    for (int d = 0; d < 4; ++d) {
        std::printf("  %-5s conv %.3fx -> ours %.3fx  (%+.1f%%)\n",
                    dev[d], per_dev_conv[d] / scenarios.size(),
                    per_dev_ours[d] / scenarios.size(),
                    100.0 * (per_dev_ours[d] / per_dev_conv[d] - 1));
    }
    std::printf("(paper: CPU -24.2%%, GPU -22.7%%, NPU -9.5%%)\n");
    return 0;
}
