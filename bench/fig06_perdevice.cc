/**
 * @file
 * Figure 6 reproduction: why per-device static granularity is not
 * enough.  For alex and sfrnn, compare the best per-device fixed
 * granularity (Per-device-best) against per-partition (512B-tracked)
 * dynamic granularity (our detector), in execution time and traffic
 * relative to the conventional scheme.
 *
 * Paper anchors: Per-device-best DEGRADES alex by 13.6% and sfrnn by
 * 16.3% vs conventional (traffic +20.4% / +23.0%), while
 * per-partition granularity IMPROVES them by 15.6% / 14.4%
 * (traffic -19.0% / -17.0%).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "devices/npu_model.hh"
#include "hetero/hetero_system.hh"

using namespace mgmee;

namespace {

struct Outcome
{
    double exec;
    double traffic;
};

Outcome
runNpu(const char *workload, Scheme scheme, Granularity static_gran)
{
    std::vector<Device> devs;
    devs.push_back(makeNpuDevice(workload, 0, 0, bench::envSeed(),
                                 bench::envScale()));
    std::array<Granularity, 8> gran{};
    gran.fill(static_gran);
    HeteroSystem sys(std::move(devs),
                     makeEngine(scheme, scenarioDataBytes(), gran));
    sys.run();
    return {static_cast<double>(sys.deviceFinishTimes()[0]),
            static_cast<double>(sys.mem().totalBytes())};
}

} // namespace

int
main()
{
    std::printf("=== Figure 6: per-device vs per-partition "
                "granularity (alex, sfrnn) ===\n");
    std::printf("%-8s %-20s %12s %12s\n", "workload", "scheme",
                "exec vs conv", "traffic vs conv");

    for (const char *wl : {"alex", "sfrnn"}) {
        const Outcome conv =
            runNpu(wl, Scheme::Conventional, Granularity::Line64B);

        // Per-device-best: sweep the four static granularities and
        // keep the best-performing one (the paper's exhaustive
        // per-device search).
        Outcome best{1e30, 0};
        Granularity best_g = Granularity::Line64B;
        for (Granularity g :
             {Granularity::Line64B, Granularity::Part512B,
              Granularity::Sub4KB, Granularity::Chunk32KB}) {
            const Outcome o = runNpu(wl, Scheme::StaticDeviceBest, g);
            if (o.exec < best.exec) {
                best = o;
                best_g = g;
            }
        }
        // A single coarse choice misclassifies the minority pattern;
        // report the aggressively coarse point the paper analyses
        // (the per-device pick for an NPU is coarse).
        const Outcome coarse =
            runNpu(wl, Scheme::StaticDeviceBest,
                   Granularity::Chunk32KB);

        // Per-partition dynamic detection (our mechanism).
        const Outcome dyn =
            runNpu(wl, Scheme::Ours, Granularity::Line64B);

        std::printf("%-8s %-20s %11.3fx %11.3fx\n", wl,
                    "Per-device-32KB", coarse.exec / conv.exec,
                    coarse.traffic / conv.traffic);
        std::printf("%-8s %-17s(%s) %8.3fx %11.3fx\n", wl,
                    "Per-device-best", granularityName(best_g),
                    best.exec / conv.exec,
                    best.traffic / conv.traffic);
        std::printf("%-8s %-20s %11.3fx %11.3fx\n", wl,
                    "Per-partition (dyn)", dyn.exec / conv.exec,
                    dyn.traffic / conv.traffic);
    }
    std::printf("\n(paper: per-device-best alex 1.136x / sfrnn "
                "1.163x; per-partition alex 0.844x / sfrnn 0.856x)\n");
    return 0;
}
