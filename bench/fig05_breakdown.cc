/**
 * @file
 * Figure 5 reproduction: overhead breakdown of conventional 64B
 * memory protection -- Unsecure -> +Cost(MAC) -> +Cost(counter) --
 * per device kind and for the heterogeneous mix.
 *
 * Paper anchors: MAC cost alone degrades CPU 26.3% / GPU 5.4% / NPU
 * 9.9%; MAC+counter reach CPU 67.0% / GPU 9.8% / NPU 21.1%; the
 * heterogeneous system degrades 33.8% with a traffic increment that
 * amplifies through queueing.
 */

#include <cstdio>
#include <functional>

#include "bench/bench_util.hh"
#include "devices/cpu_model.hh"
#include "devices/gpu_model.hh"
#include "devices/npu_model.hh"
#include "hetero/hetero_system.hh"
#include "workloads/registry.hh"

using namespace mgmee;

namespace {

struct Row
{
    double mac_only;
    double full;
    double traffic;
};

Row
runOne(const std::function<Device()> &make)
{
    const double scale = bench::envScale();
    Row row{};
    double unsec_time = 0, unsec_bytes = 0;
    for (Scheme s : {Scheme::Unsecure, Scheme::ConventionalMacOnly,
                     Scheme::Conventional}) {
        std::vector<Device> devs;
        devs.push_back(make());
        HeteroSystem sys(std::move(devs),
                         makeEngine(s, scenarioDataBytes()));
        sys.run();
        const double t =
            static_cast<double>(sys.deviceFinishTimes()[0]);
        const double bytes =
            static_cast<double>(sys.mem().totalBytes());
        if (s == Scheme::Unsecure) {
            unsec_time = t;
            unsec_bytes = bytes;
        } else if (s == Scheme::ConventionalMacOnly) {
            row.mac_only = t / unsec_time;
        } else {
            row.full = t / unsec_time;
            row.traffic = bytes / unsec_bytes;
        }
    }
    (void)scale;
    return row;
}

} // namespace

int
main()
{
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();

    std::printf("=== Figure 5: conventional-protection overhead "
                "breakdown ===\n");
    std::printf("%-10s  %10s  %14s  %10s\n", "workload", "+Cost(MAC)",
                "+Cost(counter)", "traffic");

    auto print_group = [&](const char *label, DeviceKind kind) {
        double sum_mac = 0, sum_full = 0, sum_traffic = 0;
        unsigned n = 0;
        for (const WorkloadSpec &spec : allWorkloads()) {
            if (spec.kind != kind || spec.name == "yt" ||
                spec.name == "sc") {
                continue;
            }
            auto make = [&]() -> Device {
                switch (kind) {
                  case DeviceKind::CPU:
                    return makeCpuDevice(spec.name, 0, 0, seed,
                                         scale);
                  case DeviceKind::GPU:
                    return makeGpuDevice(spec.name, 0, 0, seed,
                                         scale);
                  default:
                    return makeNpuDevice(spec.name, 0, 0, seed,
                                         scale);
                }
            };
            const Row row = runOne(make);
            std::printf("%-10s  %9.3fx  %13.3fx  %9.3fx\n",
                        spec.name.c_str(), row.mac_only, row.full,
                        row.traffic);
            sum_mac += row.mac_only;
            sum_full += row.full;
            sum_traffic += row.traffic;
            ++n;
        }
        std::printf("%-10s  %9.3fx  %13.3fx  %9.3fx\n\n", label,
                    sum_mac / n, sum_full / n, sum_traffic / n);
    };

    print_group("CPU-avg", DeviceKind::CPU);
    print_group("GPU-avg", DeviceKind::GPU);
    print_group("NPU-avg", DeviceKind::NPU);

    // Heterogeneous mix over a scenario sample.
    std::vector<Scenario> sample = bench::sweepScenarios();
    if (sample.size() > 25) {
        std::vector<Scenario> s;
        for (std::size_t i = 0; i < 25; ++i)
            s.push_back(sample[i * sample.size() / 25]);
        sample = s;
    }
    const auto stats = bench::runSweep(
        sample,
        {Scheme::ConventionalMacOnly, Scheme::Conventional}, scale,
        seed);
    std::printf("%-10s  %9.3fx  %13.3fx  %9.3fx   "
                "(paper: +MAC 1.143x, full 1.338x)\n",
                "hetero", bench::mean(stats[0].exec_norm),
                bench::mean(stats[1].exec_norm),
                bench::mean(stats[1].traffic_norm));
    return 0;
}
