/**
 * @file
 * Figure 20 reproduction: dual-granularity restriction and
 * switching-overhead elimination on the 11 selected scenarios.
 *
 * Paper anchors: dual-granularity loses 3.3% on average vs Ours
 * (5.8% on the 512B/4KB-mixed scenarios f1..c3); removing switching
 * overhead gains a further 4.4%; BMF&Unused+Ours without switching
 * overhead sits at 12.1% over the unsecured system.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace mgmee;

int
main()
{
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();
    const auto scenarios = selectedScenarios();

    const std::vector<Scheme> schemes = {
        Scheme::Ours,          Scheme::OursDual512,
        Scheme::OursDual4K,    Scheme::OursDual32K,
        Scheme::OursNoSwitchCost,
        Scheme::BmfUnusedOursNoSwitchCost,
    };

    std::printf("=== Figure 20: dual-granularity & switching "
                "overhead (selected scenarios) ===\n");
    std::printf("%-5s", "id");
    for (Scheme s : schemes)
        std::printf(" %13s", schemeName(s));
    std::printf("\n");

    std::vector<double> sums(schemes.size(), 0);
    std::vector<double> mid_sums(schemes.size(), 0);
    int mid_n = 0;
    for (const Scenario &sc : scenarios) {
        const auto unsec =
            runScenarioMemo(sc, Scheme::Unsecure, seed, scale);
        std::printf("%-5s", sc.id.c_str());
        const bool mid_group =
            sc.id[0] == 'f' && sc.id[1] != 'f' ? true
            : (sc.id[0] == 'c' && sc.id[1] != 'c');
        if (mid_group)
            ++mid_n;
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            const auto r =
                runScenarioMemo(sc, schemes[i], seed, scale);
            const double n = normalizedExecTime(r, unsec);
            std::printf(" %12.3fx", n);
            sums[i] += n;
            if (mid_group)
                mid_sums[i] += n;
        }
        std::printf("\n");
    }

    std::printf("%-5s", "avg");
    for (double s : sums)
        std::printf(" %12.3fx", s / scenarios.size());
    std::printf("\n");

    const double ours = sums[0] / scenarios.size();
    const double best_dual =
        std::min({sums[1], sums[2], sums[3]}) / scenarios.size();
    std::printf("\nbest dual vs Ours: %+0.1f%% (paper: +3.3%%); "
                "mixed-group (f1..c3) penalty: %+0.1f%% "
                "(paper: +5.8%%)\n",
                100 * (best_dual / ours - 1),
                100 * ((std::min({mid_sums[1], mid_sums[2],
                                  mid_sums[3]}) /
                        mid_n) /
                           (mid_sums[0] / mid_n) -
                       1));
    std::printf("w/o switching overhead vs Ours: %+0.1f%% "
                "(paper: -4.4%%); BMF&U+Ours w/o switch overhead "
                "over unsecure: %.1f%% (paper: 12.1%%)\n",
                100 * (sums[4] / sums[0] - 1),
                100 * (sums[5] / scenarios.size() - 1));
    return 0;
}
