/**
 * @file
 * Traffic attribution: where every off-chip byte of each protection
 * scheme goes -- demand data, counters/tree nodes, MACs, the
 * granularity table, switching, and coarse-unit RMW fills.
 *
 * This decomposition backs the paper's Sec. 3.2 argument (counters
 * cost more than MACs under the conventional scheme) and makes the
 * multi-granular savings directly visible: the counter and MAC slices
 * shrink while the switching/RMW slices stay small.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "hetero/hetero_system.hh"

using namespace mgmee;

int
main()
{
    const Scenario scenarios[] = {
        {"cc1", "xal", "mm", "alex", "dlrm"},
        {"c1", "gcc", "sten", "alex", "dlrm"},
        {"ff2", "mcf", "syr2k", "sfrnn", "dlrm"},
    };
    const Scheme schemes[] = {
        Scheme::Conventional, Scheme::Adaptive, Scheme::CommonCTR,
        Scheme::MultiCtrOnly, Scheme::Ours, Scheme::BmfUnusedOurs,
    };

    std::printf("=== Off-chip traffic attribution (%% of all bytes) "
                "===\n");
    std::printf("%-5s %-18s %8s", "scen", "scheme", "total");
    for (unsigned c = 0; c < kTrafficClasses; ++c)
        std::printf(" %8s", trafficName(static_cast<Traffic>(c)));
    std::printf("\n");

    for (const Scenario &sc : scenarios) {
        for (Scheme scheme : schemes) {
            HeteroSystem sys(buildDevices(sc, bench::envSeed(),
                                          bench::envScale()),
                             makeEngine(scheme, scenarioDataBytes()));
            sys.run();
            const double total =
                static_cast<double>(sys.mem().totalBytes());
            std::printf("%-5s %-18s %6.2fMB", sc.id.c_str(),
                        schemeName(scheme), total / (1 << 20));
            for (unsigned c = 0; c < kTrafficClasses; ++c) {
                std::printf("   %5.1f%%",
                            100.0 *
                                static_cast<double>(sys.mem().bytesBy(
                                    static_cast<Traffic>(c))) /
                                total);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    return 0;
}
