/**
 * @file
 * Micro-benchmark and wall-clock regression harness for the metadata
 * hot path: the per-access verify/update walk of the integrity tree.
 *
 * Two implementations run the exact same operation stream:
 *
 *  - `MapTreeBaseline` reproduces the seed engine verbatim --
 *    `std::unordered_map` counter/node-MAC stores, an eager node-MAC
 *    recompute at every level of every update, and a full walk to
 *    the root on every verify;
 *  - the real SecureMemory walk -- dense per-level arrays
 *    (tree/flat_store.hh), lazy node-MAC refresh, and the
 *    verified-ancestor cache.
 *
 * Both must agree (every verify returns Ok), and the harness writes
 * `results/manifest_micro_tree_walk.json` (obs::Manifest) so future
 * PRs have a wall-clock trajectory for the hot path.  Phases:
 *
 *   write_burst   8 sequential counter updates per verify (lazy MAC
 *                 refresh coalesces the shared ancestors)
 *   read_hot      repeated verifies over a hot 4KB region (the
 *                 verified-ancestor cache short-circuits the walk)
 *   mixed_random  uniform random leaves, 50/50 update/verify (worst
 *                 case for both caches)
 *
 * Knobs: MGMEE_WALK_OPS (ops per phase, default 200000).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "crypto/mac.hh"
#include "mee/secure_memory.hh"
#include "obs/manifest.hh"
#include "tree/layout.hh"

namespace mgmee {
namespace {

/** 64MB protected region: a 6-level in-memory tree (1M leaves). */
constexpr std::size_t kRegionBytes = std::size_t{64} << 20;

SecureMemory::Keys
benchKeys()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(i * 29 + 3);
    keys.mac = {0x0123456789abcdefULL, 0x0fedcba987654321ULL};
    return keys;
}

/**
 * Faithful reimplementation of the seed's map-based walk (the
 * pre-flat-store SecureMemory tree plumbing), kept here as the
 * baseline this harness regresses against.
 */
class MapTreeBaseline
{
  public:
    explicit MapTreeBaseline(std::size_t data_bytes, const SipKey &key)
        : layout_(data_bytes), mac_(key) {}

    bool
    verifyPath(unsigned level, std::uint64_t index)
    {
        const unsigned levels = layout_.geometry().levels();
        std::uint64_t i = index;
        for (unsigned lvl = level; lvl < levels; ++lvl) {
            const std::uint64_t node = i / kTreeArity;
            std::array<std::uint64_t, kTreeArity> ctrs{};
            for (unsigned c = 0; c < kTreeArity; ++c)
                ctrs[c] = counterAt(lvl, node * kTreeArity + c);
            const Addr node_addr = layout_.counterNodeAddr(lvl, node);
            const std::uint64_t parent = counterAt(lvl + 1, node);
            const Mac expected =
                mac_.nodeMac(node_addr, parent, ctrs);
            auto it = node_macs_.find(key(lvl, node));
            if (it == node_macs_.end())
                node_macs_[key(lvl, node)] = expected;
            else if (it->second != expected)
                return false;
            i = node;
        }
        return true;
    }

    void
    setCounterAndPropagate(unsigned level, std::uint64_t index,
                           std::uint64_t value)
    {
        setCounterRaw(level, index, value);
        const unsigned levels = layout_.geometry().levels();
        unsigned lvl = level;
        std::uint64_t i = index;
        while (lvl < levels) {
            const std::uint64_t node = i / kTreeArity;
            setCounterRaw(lvl + 1, node,
                          counterAt(lvl + 1, node) + 1);
            refreshNodeMac(lvl, node);
            ++lvl;
            i = node;
        }
    }

    std::uint64_t
    counterAt(unsigned level, std::uint64_t index) const
    {
        const std::uint64_t k =
            level >= layout_.geometry().levels()
                ? key(level, index) | kTrustedBit
                : key(level, index);
        auto it = counters_.find(k);
        return it == counters_.end() ? 0 : it->second;
    }

  private:
    static std::uint64_t
    key(unsigned level, std::uint64_t index)
    {
        return (static_cast<std::uint64_t>(level) << 56) | index;
    }

    static constexpr std::uint64_t kTrustedBit = std::uint64_t{1}
                                                 << 63;

    void
    setCounterRaw(unsigned level, std::uint64_t index,
                  std::uint64_t value)
    {
        const std::uint64_t k =
            level >= layout_.geometry().levels()
                ? key(level, index) | kTrustedBit
                : key(level, index);
        counters_[k] = value;
    }

    void
    refreshNodeMac(unsigned level, std::uint64_t node)
    {
        std::array<std::uint64_t, kTreeArity> ctrs{};
        for (unsigned c = 0; c < kTreeArity; ++c)
            ctrs[c] = counterAt(level, node * kTreeArity + c);
        const Addr node_addr = layout_.counterNodeAddr(level, node);
        const std::uint64_t parent = counterAt(level + 1, node);
        node_macs_[key(level, node)] =
            mac_.nodeMac(node_addr, parent, ctrs);
    }

    MetadataLayout layout_;
    MacEngine mac_;
    std::unordered_map<std::uint64_t, std::uint64_t> counters_;
    std::unordered_map<std::uint64_t, Mac> node_macs_;
};

/** Exposes the protected walk entry points of the real engine. */
class FlatWalkHarness : public SecureMemory
{
  public:
    using SecureMemory::SecureMemory;
    using SecureMemory::counterAt;
    using SecureMemory::setCounterAndPropagate;
    using SecureMemory::verifyPath;
};

/** One (leaf, is_update) operation of the pre-generated stream. */
struct Op
{
    std::uint64_t leaf;
    bool update;
};

std::vector<Op>
makePhase(const char *phase, std::uint64_t leaves, std::size_t ops,
          Rng &rng)
{
    std::vector<Op> v;
    v.reserve(ops);
    const std::string p = phase;
    if (p == "write_burst") {
        // Streams of 8 sequential updates then one verify, walking
        // forward through memory (shared ancestors between bumps).
        std::uint64_t leaf = 0;
        while (v.size() < ops) {
            for (unsigned k = 0; k < 8 && v.size() < ops; ++k)
                v.push_back({(leaf + k) % leaves, true});
            v.push_back({leaf % leaves, false});
            leaf += 8;
        }
    } else if (p == "read_hot") {
        // Verifies over a hot 64-leaf (4KB) region, occasional
        // update to keep the tree moving.
        const std::uint64_t base = rng.below(leaves - 64);
        for (std::size_t i = 0; i < ops; ++i) {
            const std::uint64_t leaf = base + rng.below(64);
            v.push_back({leaf, i % 16 == 0});
        }
    } else {  // mixed_random
        for (std::size_t i = 0; i < ops; ++i)
            v.push_back({rng.below(leaves), rng.chance(0.5)});
    }
    return v;
}

template <typename Update, typename Verify>
double
runOps(const std::vector<Op> &ops, Update &&update, Verify &&verify)
{
    std::uint64_t bad = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const Op &op : ops) {
        if (op.update)
            update(op.leaf);
        else if (!verify(op.leaf))
            ++bad;
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (bad) {
        std::fprintf(stderr,
                     "micro_tree_walk: %llu verifies FAILED\n",
                     static_cast<unsigned long long>(bad));
        std::exit(1);
    }
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

} // namespace
} // namespace mgmee

int
main()
{
    using namespace mgmee;

    const std::size_t ops_per_phase =
        config().walk_ops ? config().walk_ops : 200000;

    const SecureMemory::Keys keys = benchKeys();
    MapTreeBaseline base(kRegionBytes, keys.mac);
    FlatWalkHarness flat(kRegionBytes, keys);
    const std::uint64_t leaves =
        flat.layout().geometry().leafCount();

    const char *phases[] = {"write_burst", "read_hot", "mixed_random"};
    double total_base = 0, total_flat = 0;
    obs::Manifest manifest("micro_tree_walk");
    manifest.set("region_bytes",
                 static_cast<std::uint64_t>(kRegionBytes));
    manifest.set("ops_per_phase",
                 static_cast<std::uint64_t>(ops_per_phase));

    for (const char *phase : phases) {
        // Identical op streams for both sides.
        Rng rng_stream(42);
        const std::vector<Op> ops =
            makePhase(phase, leaves, ops_per_phase, rng_stream);

        const double ns_base = runOps(
            ops,
            [&](std::uint64_t leaf) {
                base.setCounterAndPropagate(
                    0, leaf, base.counterAt(0, leaf) + 1);
            },
            [&](std::uint64_t leaf) {
                return base.verifyPath(0, leaf);
            });
        const double ns_flat = runOps(
            ops,
            [&](std::uint64_t leaf) {
                flat.setCounterAndPropagate(
                    0, leaf, flat.counterAt(0, leaf) + 1);
            },
            [&](std::uint64_t leaf) {
                return flat.verifyPath(0, leaf) ==
                       SecureMemory::Status::Ok;
            });

        total_base += ns_base;
        total_flat += ns_flat;
        const double speedup = ns_base / ns_flat;
        std::printf("%-14s %10.1f ms -> %8.1f ms  (%.2fx)\n", phase,
                    ns_base / 1e6, ns_flat / 1e6, speedup);
        const std::string p = phase;
        manifest.set(p + "_baseline_ns", ns_base);
        manifest.set(p + "_flat_ns", ns_flat);
        manifest.set(p + "_speedup", speedup);
    }

    const double speedup = total_base / total_flat;
    std::printf("%-14s %10.1f ms -> %8.1f ms  (%.2fx) %s\n", "TOTAL",
                total_base / 1e6, total_flat / 1e6, speedup,
                speedup >= 3.0 ? "[target >=3x met]"
                               : "[below 3x target]");

    manifest.set("total_baseline_ns", total_base);
    manifest.set("total_flat_ns", total_flat);
    manifest.set("total_speedup", speedup);
    obs::ManifestReporter::finalize(manifest);
    return 0;
}
