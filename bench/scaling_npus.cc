/**
 * @file
 * Heterogeneity-scaling study (extension): how protection overhead
 * grows as more NPUs share the memory system, and how much of that
 * growth the multi-granular engine removes.
 *
 * The paper's motivation (Sec. 1/3.2) is that heterogeneous traffic
 * "significantly exceeds the memory bandwidth" so "stalled memory
 * requests recursively delay subsequent memory requests"; adding
 * accelerators should therefore amplify the conventional scheme's
 * overhead faster than Ours'.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "devices/cpu_model.hh"
#include "devices/gpu_model.hh"
#include "devices/npu_model.hh"
#include "hetero/hetero_system.hh"

using namespace mgmee;

namespace {

std::vector<Device>
makeSystem(unsigned npus, std::uint64_t seed, double scale)
{
    std::vector<Device> devices;
    devices.push_back(
        makeCpuDevice("xal", 0, 0 * kDeviceStride, seed * 8, scale));
    devices.push_back(
        makeGpuDevice("sten", 1, 1 * kDeviceStride, seed * 8 + 1,
                      scale));
    for (unsigned n = 0; n < npus; ++n) {
        devices.push_back(makeNpuDevice(
            n % 2 ? "sfrnn" : "alex", 2 + n,
            (2 + n) * kDeviceStride, seed * 8 + 2 + n, scale));
    }
    return devices;
}

double
runOne(unsigned npus, Scheme scheme, std::uint64_t seed, double scale,
       const std::vector<Cycle> &unsec_finish)
{
    HeteroSystem sys(makeSystem(npus, seed, scale),
                     makeEngine(scheme, (2 + npus) * kDeviceStride));
    sys.run();
    const auto finish = sys.deviceFinishTimes();
    double sum = 0;
    for (std::size_t d = 0; d < finish.size(); ++d) {
        sum += static_cast<double>(finish[d]) /
               static_cast<double>(unsec_finish[d]);
    }
    return sum / static_cast<double>(finish.size());
}

} // namespace

int
main()
{
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();

    std::printf("=== Scaling study: CPU + GPU + N NPUs (xal + sten + "
                "alex/sfrnn...) ===\n");
    std::printf("%6s %14s %10s %14s %12s\n", "NPUs", "Conventional",
                "Ours", "BMF&U+Ours", "Ours gain");
    for (unsigned npus : {1u, 2u, 3u, 4u}) {
        HeteroSystem unsec(makeSystem(npus, seed, scale),
                           makeEngine(Scheme::Unsecure,
                                      (2 + npus) * kDeviceStride));
        unsec.run();
        const auto base = unsec.deviceFinishTimes();

        const double conv =
            runOne(npus, Scheme::Conventional, seed, scale, base);
        const double ours =
            runOne(npus, Scheme::Ours, seed, scale, base);
        const double combo =
            runOne(npus, Scheme::BmfUnusedOurs, seed, scale, base);
        std::printf("%6u %13.3fx %9.3fx %13.3fx %11.1f%%\n", npus,
                    conv, ours, combo, 100.0 * (1.0 - ours / conv));
    }
    std::printf("\n(The overhead the conventional scheme adds grows "
                "with contention; the multi-granular\nengine's "
                "relative gain should grow or hold with it.)\n");
    return 0;
}
