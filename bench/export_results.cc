/**
 * @file
 * Machine-readable export: run the full scenario sweep for every
 * scheme and write per-scenario CSV rows, ready for
 * scripts/plot_results.py (or your plotting tool of choice) to
 * regenerate the paper's figures as charts.
 *
 * Output: results/sweep.csv plus a run manifest
 * (results/manifest_export_results.json); override the directory
 * with MGMEE_RESULTS_DIR.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/stat.h>

#include "bench/bench_util.hh"
#include "common/config.hh"
#include "obs/manifest.hh"

using namespace mgmee;

int
main()
{
    const std::string dir = config().results_dir;
    ::mkdir(dir.c_str(), 0755);
    const std::string path = dir + "/sweep.csv";

    std::ofstream csv(path);
    if (!csv) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    csv << "scenario,cpu,gpu,npu1,npu2,scheme,norm_exec,"
           "norm_traffic,sec_misses\n";

    const std::vector<Scheme> schemes = {
        Scheme::Conventional, Scheme::Adaptive, Scheme::CommonCTR,
        Scheme::MultiCtrOnly, Scheme::Ours, Scheme::BmfUnused,
        Scheme::BmfUnusedOurs,
    };

    const auto scenarios = bench::sweepScenarios();
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();

    std::size_t done = 0;
    Histogram miss_hist;
    for (const Scenario &sc : scenarios) {
        const RunResult unsec =
            runScenarioMemo(sc, Scheme::Unsecure, seed, scale);
        for (Scheme scheme : schemes) {
            const RunResult r = runScenarioMemo(sc, scheme, seed, scale);
            csv << sc.id << ',' << sc.cpu << ',' << sc.gpu << ','
                << sc.npu1 << ',' << sc.npu2 << ','
                << schemeName(scheme) << ','
                << normalizedExecTime(r, unsec) << ','
                << static_cast<double>(r.total_bytes) /
                       static_cast<double>(unsec.total_bytes)
                << ',' << r.security_misses << '\n';
            miss_hist.record(r.security_misses);
        }
        if (++done % 50 == 0) {
            std::printf("  %zu/%zu scenarios\n", done,
                        scenarios.size());
        }
    }
    std::printf("wrote %s (%zu scenarios x %zu schemes)\n",
                path.c_str(), scenarios.size(), schemes.size());

    obs::Manifest manifest("export_results");
    manifest.set("csv", path);
    manifest.set("scenarios",
                 static_cast<std::uint64_t>(scenarios.size()));
    manifest.set("schemes",
                 static_cast<std::uint64_t>(schemes.size()));
    manifest.set("scale", scale);
    manifest.set("seed", seed);
    manifest.addHistogram("security_misses", miss_hist);
    obs::ManifestReporter::finalize(manifest, dir);
    return 0;
}
