/**
 * @file
 * Ablation: protection overhead vs available memory bandwidth.
 *
 * The paper's central amplification argument (Sec. 3.2) is that
 * security metadata hurts most when traffic already presses the
 * bandwidth limit ("stalled memory requests recursively delay
 * subsequent memory requests").  Sweeping the per-channel service
 * rate around the Orin-like 17 GB/s point shows exactly that: at
 * ample bandwidth every scheme converges toward latency-only
 * overhead, and as bandwidth tightens the conventional scheme's
 * overhead explodes while the multi-granular engine's reduced traffic
 * keeps it flatter.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "hetero/hetero_system.hh"

using namespace mgmee;

namespace {

double
runWith(const Scenario &sc, Scheme scheme, Cycle service_cycles)
{
    SystemConfig cfg;
    cfg.mem.service_cycles_per_line = service_cycles;
    HeteroSystem sys(buildDevices(sc, bench::envSeed(),
                                  bench::envScale()),
                     makeEngine(scheme, scenarioDataBytes()), cfg);
    sys.run();

    SystemConfig ucfg;
    ucfg.mem.service_cycles_per_line = service_cycles;
    HeteroSystem unsec(buildDevices(sc, bench::envSeed(),
                                    bench::envScale()),
                       makeEngine(Scheme::Unsecure,
                                  scenarioDataBytes()),
                       ucfg);
    unsec.run();

    const auto a = sys.deviceFinishTimes();
    const auto b = unsec.deviceFinishTimes();
    double sum = 0;
    for (std::size_t d = 0; d < a.size(); ++d)
        sum += static_cast<double>(a[d]) / static_cast<double>(b[d]);
    return sum / static_cast<double>(a.size());
}

} // namespace

int
main()
{
    const Scenario sc{"c1", "gcc", "sten", "alex", "dlrm"};

    std::printf("=== Ablation: overhead vs memory bandwidth "
                "(scenario c1) ===\n");
    std::printf("%-22s %14s %10s %12s\n", "cycles/line (GB/s/ch)",
                "Conventional", "Ours", "Ours gain");
    // 64B per `service` cycles at 1GHz: 4 -> 16GB/s/ch, 8 -> 8.5-ish
    // (the Table 3 point), 16 -> 4GB/s/ch, ...
    for (Cycle service : {Cycle{2}, Cycle{4}, Cycle{8}, Cycle{12},
                          Cycle{16}, Cycle{24}}) {
        const double conv =
            runWith(sc, Scheme::Conventional, service);
        const double ours = runWith(sc, Scheme::Ours, service);
        std::printf("%6llu  (%4.1f GB/s)   %13.3fx %9.3fx %11.1f%%%s\n",
                    static_cast<unsigned long long>(service),
                    64.0 / static_cast<double>(service), conv, ours,
                    100.0 * (1.0 - ours / conv),
                    service == 8 ? "   <- Table 3 (LPDDR4)" : "");
    }
    std::printf("\n(Lower bandwidth -> deeper saturation -> larger "
                "conventional overhead and larger\nmulti-granular "
                "gain: the paper's amplification argument, "
                "quantified.)\n");
    return 0;
}
