/**
 * @file
 * Ablation: access-tracker sizing (Sec. 4.4/4.5 fix 12 entries of
 * 32KB coverage with a 16K-cycle lifetime, budgeted to match prior
 * work's on-chip storage).
 *
 * Sweeps the entry count and the lifetime and reports the
 * multi-granular engine's normalized execution time plus detection
 * activity.  Too few entries or too short a lifetime evict chunks
 * before streams complete (under-promotion); very long lifetimes
 * stale the detector.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/multigran_engine.hh"
#include "hetero/hetero_system.hh"

using namespace mgmee;

namespace {

struct Outcome
{
    double norm;
    std::uint64_t detections;
    std::uint64_t switches;
};

Outcome
runWith(const Scenario &sc, unsigned entries, Cycle lifetime,
        const RunResult &unsec)
{
    MultiGranEngineConfig cfg;
    cfg.timing.parallel_walk = true;
    cfg.tracker.entries = entries;
    cfg.tracker.lifetime = lifetime;
    auto engine = std::make_unique<MultiGranEngine>(
        "ours", scenarioDataBytes(), cfg);
    HeteroSystem sys(buildDevices(sc, bench::envSeed(),
                                  bench::envScale()),
                     std::move(engine));
    sys.run();
    RunResult r;
    r.device_finish = sys.deviceFinishTimes();
    return {normalizedExecTime(r, unsec),
            sys.engine().stats().get("detections"),
            sys.engine().stats().get("switches")};
}

} // namespace

int
main()
{
    const Scenario sc{"c1", "gcc", "sten", "alex", "dlrm"};
    const RunResult unsec = runScenario(sc, Scheme::Unsecure,
                                        bench::envSeed(),
                                        bench::envScale());

    std::printf("=== Ablation: access-tracker entries (lifetime "
                "16K cycles) ===\n");
    std::printf("%8s %10s %12s %10s\n", "entries", "exec", "detections",
                "switches");
    for (unsigned entries : {2, 4, 8, 12, 24, 48}) {
        const Outcome o = runWith(sc, entries, 16 * 1024, unsec);
        std::printf("%8u %9.3fx %12llu %10llu%s\n", entries, o.norm,
                    static_cast<unsigned long long>(o.detections),
                    static_cast<unsigned long long>(o.switches),
                    entries == 12 ? "   <- paper (3 x 4 PUs)" : "");
    }

    std::printf("\n=== Ablation: entry lifetime (12 entries) ===\n");
    std::printf("%9s %10s %12s %10s\n", "lifetime", "exec",
                "detections", "switches");
    for (Cycle lifetime :
         {Cycle{2048}, Cycle{8192}, Cycle{16384}, Cycle{65536},
          Cycle{262144}}) {
        const Outcome o = runWith(sc, 12, lifetime, unsec);
        std::printf("%8lluc %9.3fx %12llu %10llu%s\n",
                    static_cast<unsigned long long>(lifetime), o.norm,
                    static_cast<unsigned long long>(o.detections),
                    static_cast<unsigned long long>(o.switches),
                    lifetime == 16384 ? "   <- paper (16K cycles)"
                                      : "");
    }
    return 0;
}
