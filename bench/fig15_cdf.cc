/**
 * @file
 * Figure 15 reproduction: CDF of normalized execution time over the
 * 250 heterogeneous scenarios, comparing prior schemes, Ours, and
 * the subtree-combined scheme.
 *
 * Paper anchors: Ours beats Adaptive by 8.5% and CommonCTR by 7.7%
 * on average; BMF&Unused+Ours improves on both standalone schemes
 * (7.4% / 6.9%) and lands at 12.7% overhead vs the unsecured system.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace mgmee;

int
main()
{
    const std::vector<Scheme> schemes = {
        Scheme::Adaptive, Scheme::CommonCTR, Scheme::Ours,
        Scheme::BmfUnused, Scheme::BmfUnusedOurs,
    };
    const auto scenarios = bench::sweepScenarios();
    const auto stats = bench::runSweep(scenarios, schemes,
                                       bench::envScale(),
                                       bench::envSeed());

    char title[128];
    std::snprintf(title, sizeof(title),
                  "=== Figure 15: normalized execution time CDF "
                  "(%zu scenarios) ===",
                  scenarios.size());
    bench::printCdf(title, schemes, stats);

    const double ours = bench::mean(stats[2].exec_norm);
    std::printf("\nOurs vs Adaptive:  %+5.1f%%  (paper: -8.5%%)\n",
                100.0 * (ours / bench::mean(stats[0].exec_norm) - 1));
    std::printf("Ours vs CommonCTR: %+5.1f%%  (paper: -7.7%%)\n",
                100.0 * (ours / bench::mean(stats[1].exec_norm) - 1));
    std::printf("BMF&Unused+Ours overhead vs unsecure: %.1f%% "
                "(paper: 12.7%%)\n",
                100.0 * (bench::mean(stats[4].exec_norm) - 1));
    return 0;
}
