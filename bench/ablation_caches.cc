/**
 * @file
 * Ablation: sensitivity of the conventional and multi-granular
 * engines to the on-chip security cache sizes (the paper fixes 8KB
 * metadata + 4KB MAC, Sec. 5.1).
 *
 * Expected shape: conventional protection is strongly cache-bound --
 * growing the metadata cache recovers much of its overhead -- while
 * the multi-granular engine, whose promoted counters and merged MACs
 * shrink the metadata working set, is far less sensitive.  That gap
 * is the "improves the utilization of security caches" claim of
 * Sec. 5.2.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/multigran_engine.hh"
#include "hetero/hetero_system.hh"
#include "mee/conventional_engine.hh"

using namespace mgmee;

namespace {

double
runWith(const Scenario &sc, std::size_t meta_bytes,
        std::size_t mac_bytes, bool ours, const RunResult &unsec)
{
    TimingConfig timing;
    timing.parallel_walk = true;
    timing.meta_cache_bytes = meta_bytes;
    timing.mac_cache_bytes = mac_bytes;

    std::unique_ptr<TimingEngine> engine;
    if (ours) {
        MultiGranEngineConfig cfg;
        cfg.timing = timing;
        engine = std::make_unique<MultiGranEngine>("ours",
                                                   scenarioDataBytes(),
                                                   cfg);
    } else {
        engine = std::make_unique<ConventionalEngine>(
            scenarioDataBytes(), timing);
    }
    HeteroSystem sys(buildDevices(sc, bench::envSeed(),
                                  bench::envScale()),
                     std::move(engine));
    sys.run();
    RunResult r;
    r.device_finish = sys.deviceFinishTimes();
    return normalizedExecTime(r, unsec);
}

} // namespace

int
main()
{
    const Scenario scenarios[] = {
        {"cc1", "xal", "mm", "alex", "dlrm"},
        {"c1", "gcc", "sten", "alex", "dlrm"},
        {"f1", "xal", "pr", "sfrnn", "ncf"},
    };

    std::printf("=== Ablation: security cache sizes (normalized "
                "exec time) ===\n");
    std::printf("%-6s %-14s", "scen", "scheme");
    for (std::size_t kb : {2, 4, 8, 16, 32})
        std::printf("  meta=%2zuKB", kb);
    std::printf("\n");

    for (const Scenario &sc : scenarios) {
        const RunResult unsec = runScenario(
            sc, Scheme::Unsecure, bench::envSeed(), bench::envScale());
        for (bool ours : {false, true}) {
            std::printf("%-6s %-14s", sc.id.c_str(),
                        ours ? "Ours" : "Conventional");
            for (std::size_t kb : {2, 4, 8, 16, 32}) {
                std::printf("    %6.3fx",
                            runWith(sc, kb * 1024,
                                    kb * 512,  // MAC cache scales 1:2
                                    ours, unsec));
            }
            std::printf("\n");
        }
    }
    std::printf("\n(The paper's configuration is the meta=8KB "
                "column; Ours' flatter curve shows its smaller "
                "metadata working set.)\n");
    return 0;
}
