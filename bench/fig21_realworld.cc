/**
 * @file
 * Figure 21 reproduction: real-world application pipelines (Table 6).
 *
 * Finance:   GPU Page-Rank -> CPU Route-Planning -> NPU DLRM.
 * AutoDrive: GPU Stencil2d -> NPU Yolo-Tiny -> CPU Stream-Clustering.
 *
 * Our substrate runs the pipeline stages concurrently on the shared
 * memory system (the protection engine sees the same interleaved
 * traffic mix); the paper's staged data movement between devices is
 * approximated by the shared-bandwidth contention.
 *
 * Paper anchors: Finance degradation 45.0% (conventional) -> 24.2%
 * (Ours) -> 19.6% (+subtrees); AutoDrive 41.4% -> 34.5% -> 21.9%;
 * AutoDrive's static scheme is WORSE than conventional.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace mgmee;

int
main()
{
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();

    std::printf("=== Figure 21: real-world applications ===\n");
    std::printf("%-10s %13s %13s %13s %13s\n", "pipeline",
                "Conventional", "Static-best", "Ours",
                "BMF&U+Ours");

    for (const Scenario &sc :
         {financeScenario(), autodriveScenario()}) {
        const auto unsec =
            runScenarioMemo(sc, Scheme::Unsecure, seed, scale);
        const auto best = searchStaticBest(sc, seed, scale);
        std::printf("%-10s", sc.id.c_str());
        for (Scheme s :
             {Scheme::Conventional, Scheme::StaticDeviceBest,
              Scheme::Ours, Scheme::BmfUnusedOurs}) {
            const auto r = runScenarioMemo(sc, s, seed, scale, best);
            std::printf(" %12.3fx",
                        normalizedExecTime(r, unsec));
        }
        std::printf("\n");
    }
    std::printf("\n(paper: finance 1.450x -> 1.242x -> 1.196x; "
                "autodrive 1.414x -> 1.345x -> 1.219x)\n");
    return 0;
}
