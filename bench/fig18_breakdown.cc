/**
 * @file
 * Figure 18 reproduction: mean performance improvement, data-traffic
 * reduction, and security-cache-miss reduction of each optimisation
 * step over the conventional system.  Execution time and traffic are
 * normalized to the unsecured scheme; misses to the conventional
 * scheme (as in the paper).
 *
 * Paper anchors: traffic -4.7% with counter-only optimisation,
 * -10.5% with counters+MACs; misses -15.8% (CTR-only), -31.9%
 * (Ours), -56.9% (BMF&Unused+Ours); Static-device-best cuts misses
 * aggressively but loses time to mispredicted bulk accesses.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/config.hh"

using namespace mgmee;

int
main()
{
    const std::vector<Scheme> schemes = {
        Scheme::Conventional, Scheme::StaticDeviceBest,
        Scheme::MultiCtrOnly, Scheme::Ours, Scheme::BmfUnusedOurs,
    };
    auto scenarios = bench::sweepScenarios();
    if (scenarios.size() > 60 && config().scenarios == 0) {
        std::vector<Scenario> s;
        for (std::size_t i = 0; i < 60; ++i)
            s.push_back(scenarios[i * scenarios.size() / 60]);
        scenarios = s;
    }
    const auto stats =
        bench::runSweep(scenarios, schemes, bench::envScale(),
                        bench::envSeed(), /*static_best=*/true);

    const double conv_traffic = bench::mean(stats[0].traffic_norm);
    const double conv_misses = bench::mean(stats[0].misses);
    const double conv_exec = bench::mean(stats[0].exec_norm);

    std::printf("=== Figure 18: breakdown of optimisations (%zu "
                "scenarios) ===\n",
                scenarios.size());
    std::printf("%-20s %12s %14s %16s\n", "scheme",
                "exec(vs uns)", "traffic(vs uns)",
                "misses(vs conv)");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        std::printf("%-20s %11.3fx %13.3fx %15.3fx\n",
                    schemeName(schemes[i]),
                    bench::mean(stats[i].exec_norm),
                    bench::mean(stats[i].traffic_norm),
                    bench::mean(stats[i].misses) / conv_misses);
    }

    std::printf("\nvs Conventional: exec %+0.1f%% (Ours; paper "
                "-14.3%%), traffic %+0.1f%% (paper -10.5%%)\n",
                100 * (bench::mean(stats[3].exec_norm) / conv_exec -
                       1),
                100 * (bench::mean(stats[3].traffic_norm) /
                           conv_traffic -
                       1));
    return 0;
}
