/**
 * @file
 * Thread-scaling harness for the sharded event scheduler.
 *
 * Runs the same >=16-scenario, multi-scheme sweep through
 * sim::runShardedSweep at thread counts {1, 2, 4, 8, cap} with a
 * fixed shard topology, and reports per-round wall time, speedup vs.
 * the single-thread round, and p50/p99 per-quantum wall latency to
 * `results/manifest_shard_scaling.json` (obs::Manifest).
 *
 * Contracts enforced (non-zero exit on violation):
 *  - every round's results are bit-identical to the single-thread
 *    round (finish times, traffic, misses, request counts);
 *  - with MGMEE_ENFORCE_SCALING=1, the 8-thread round is >= 3x
 *    faster than the 1-thread round (the ISSUE 6 target; off by
 *    default so 1-core CI boxes only check identity).
 *
 * Knobs: MGMEE_SCENARIOS (default here: 16 evenly spaced),
 * MGMEE_SCALE, MGMEE_SEED, MGMEE_SHARDS (default 8), MGMEE_QUANTUM.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/config.hh"
#include "common/threads.hh"
#include "hetero/run_memo.hh"
#include "obs/manifest.hh"
#include "sim/sharded_sweep.hh"

using namespace mgmee;

namespace {

/** >=16 scenarios even when MGMEE_SCENARIOS is unset (the full 250
 *  would make the round-trip comparison needlessly slow). */
std::vector<Scenario>
scalingScenarios()
{
    if (config().scenarios != 0)
        return bench::sweepScenarios();
    const std::vector<Scenario> all = allScenarios();
    std::vector<Scenario> subset;
    constexpr std::size_t kDefault = 16;
    for (std::size_t i = 0; i < kDefault; ++i)
        subset.push_back(all[i * all.size() / kDefault]);
    return subset;
}

bool
resultsEqual(const sim::ShardedSweepResult &a,
             const sim::ShardedSweepResult &b)
{
    auto runEq = [](const RunResult &x, const RunResult &y) {
        return x.scheme == y.scheme &&
               x.device_finish == y.device_finish &&
               x.total_bytes == y.total_bytes &&
               x.security_misses == y.security_misses &&
               x.requests == y.requests;
    };
    if (a.results.size() != b.results.size() ||
        a.unsecure.size() != b.unsecure.size())
        return false;
    for (std::size_t s = 0; s < a.unsecure.size(); ++s)
        if (!runEq(a.unsecure[s], b.unsecure[s]))
            return false;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        if (a.results[i].size() != b.results[i].size())
            return false;
        for (std::size_t s = 0; s < a.results[i].size(); ++s)
            if (!runEq(a.results[i][s], b.results[i][s]))
                return false;
    }
    return true;
}

struct Round
{
    unsigned threads = 1;
    double seconds = 0;
    sim::ShardedSweepResult result;
};

} // namespace

int
main()
{
    const std::vector<Scenario> scenarios = scalingScenarios();
    const std::vector<Scheme> schemes = {
        Scheme::Conventional, Scheme::Ours, Scheme::BmfUnusedOurs,
    };
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();
    const unsigned shards =
        envShards() ? envShards() : std::min(8u, threadCap());

    std::vector<unsigned> thread_counts = {1, 2, 4, 8, threadCap()};
    std::sort(thread_counts.begin(), thread_counts.end());
    thread_counts.erase(
        std::unique(thread_counts.begin(), thread_counts.end()),
        thread_counts.end());

    std::printf("=== shard_scaling: %zu scenarios x %zu schemes, "
                "%u shards, quantum %llu (scale %.2f) ===\n",
                scenarios.size(), schemes.size(), shards,
                static_cast<unsigned long long>(envQuantum()), scale);

    std::vector<Round> rounds;
    for (const unsigned threads : thread_counts) {
        // Cold memo every round: a warm memo would answer every job
        // without touching the scheduler.
        runMemoClear();
        sim::ShardedSweepConfig cfg;
        cfg.seed = seed;
        cfg.scale = scale;
        cfg.threads = threads;
        cfg.shards = shards;
        cfg.quantum = envQuantum();
        // Pin the in-flight window: the auto default scales with the
        // thread count, which would give rounds different schedules
        // (same results, but unfair wall-clock comparison).
        cfg.max_inflight = 32;
        const auto t0 = std::chrono::steady_clock::now();
        Round round;
        round.threads = threads;
        round.result = sim::runShardedSweep(scenarios, schemes, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        round.seconds =
            std::chrono::duration<double>(t1 - t0).count();
        rounds.push_back(std::move(round));
    }

    const Round &base = rounds.front();
    bool identical = true;
    obs::Manifest manifest("shard_scaling");
    manifest.set("scenarios",
                 static_cast<std::uint64_t>(scenarios.size()));
    manifest.set("schemes",
                 static_cast<std::uint64_t>(schemes.size()));
    manifest.set("shards", shards);
    manifest.set("quantum",
                 static_cast<std::uint64_t>(envQuantum()));
    manifest.set("scale", scale);

    double speedup8 = 0;
    std::printf("%8s %10s %9s %12s %12s %10s\n", "threads", "secs",
                "speedup", "quanta", "q_wall_p50", "q_wall_p99");
    for (const Round &round : rounds) {
        const bool match = resultsEqual(base.result, round.result);
        identical = identical && match;
        const double speedup = base.seconds / round.seconds;
        if (round.threads == 8)
            speedup8 = speedup;
        const auto &h = round.result.telemetry.quantum_wall_ns;
        std::printf("%8u %10.3f %8.2fx %12llu %10lluns %10lluns%s\n",
                    round.threads, round.seconds, speedup,
                    static_cast<unsigned long long>(
                        round.result.telemetry.quanta),
                    static_cast<unsigned long long>(
                        h.percentile(0.50)),
                    static_cast<unsigned long long>(
                        h.percentile(0.99)),
                    match ? "" : "  [DIVERGED]");

        const std::string tag =
            "t" + std::to_string(round.threads);
        manifest.set(tag + ".seconds", round.seconds);
        manifest.set(tag + ".speedup", speedup);
        manifest.set(tag + ".quanta",
                     round.result.telemetry.quanta);
        manifest.set(tag + ".events",
                     round.result.telemetry.events);
        manifest.set(tag + ".cross_events",
                     round.result.telemetry.cross_events);
        manifest.set(tag + ".bit_identical", match);
        manifest.addHistogram(tag + ".quantum_wall_ns", h);
    }
    manifest.set("bit_identical", identical);
    manifest.set("speedup_8t", speedup8);
    obs::ManifestReporter::finalize(manifest);

    if (!identical) {
        std::fprintf(stderr,
                     "shard_scaling: multi-thread results DIVERGED "
                     "from the single-thread run\n");
        return 1;
    }
    if (config().enforce_scaling && speedup8 < 3.0) {
        std::fprintf(stderr,
                     "shard_scaling: 8-thread speedup %.2fx below "
                     "the 3x target\n",
                     speedup8);
        return 1;
    }
    return 0;
}
