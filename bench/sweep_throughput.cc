/**
 * @file
 * End-to-end throughput harness for the sweep-layer memoization
 * stack (trace repo + run-result memo + static-best memo).
 *
 * The workload models what a full figure-reproduction session does:
 * it repeats two overlapping bench sections (a fig15-style sweep and
 * a fig17-style sweep sharing scenarios, the Unsecure baselines, and
 * two schemes) MGMEE_SWEEP_REPS times.  The whole workload runs once
 * with `MGMEE_MEMO=0` (every trace regenerated, every run
 * re-simulated) and once with `MGMEE_MEMO=1` from a cold cache, and
 * the harness reports scenarios/sec for both.
 *
 * Contracts enforced (non-zero exit on violation):
 *  - both modes produce bit-identical sweep statistics;
 *  - the memoized run is not slower than the unmemoized one (CI
 *    regression gate).
 * The ≥3x target of ISSUE 2 is reported in the output and in
 * `results/manifest_sweep_throughput.json` (obs::Manifest).
 *
 * Knobs: MGMEE_SCENARIOS, MGMEE_SCALE, MGMEE_SEED, MGMEE_THREADS,
 * MGMEE_SWEEP_REPS (workload repetitions, default 3).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.hh"
#include "common/config.hh"
#include "hetero/run_memo.hh"
#include "obs/manifest.hh"
#include "workloads/trace_repo.hh"

using namespace mgmee;

namespace {

struct WorkloadResult
{
    std::vector<bench::SweepStats> section_a;
    std::vector<bench::SweepStats> section_b;
    double seconds = 0;
    std::size_t scenario_runs = 0;  //!< (scenario, scheme) results
};

const std::vector<Scheme> kSectionA = {
    Scheme::Adaptive, Scheme::CommonCTR, Scheme::Ours,
    Scheme::BmfUnusedOurs,
};
const std::vector<Scheme> kSectionB = {
    Scheme::Conventional, Scheme::Ours, Scheme::BmfUnusedOurs,
};

WorkloadResult
runWorkload(const std::vector<Scenario> &scenarios, double scale,
            std::uint64_t seed, unsigned reps)
{
    WorkloadResult res;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned rep = 0; rep < reps; ++rep) {
        res.section_a = bench::runSweep(scenarios, kSectionA, scale,
                                        seed);
        res.section_b = bench::runSweep(scenarios, kSectionB, scale,
                                        seed);
        res.scenario_runs +=
            scenarios.size() * (kSectionA.size() + kSectionB.size());
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();
    return res;
}

bool
statsEqual(const std::vector<bench::SweepStats> &a,
           const std::vector<bench::SweepStats> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].exec_norm != b[i].exec_norm ||
            a[i].traffic_norm != b[i].traffic_norm ||
            a[i].misses != b[i].misses) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    const auto scenarios = bench::sweepScenarios();
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();
    const unsigned reps = config().sweep_reps
                              ? static_cast<unsigned>(config().sweep_reps)
                              : 3;

    std::printf("=== sweep_throughput: %zu scenarios x %zu schemes "
                "x %u reps (scale %.2f) ===\n",
                scenarios.size(),
                kSectionA.size() + kSectionB.size(), reps, scale);

    // Unmemoized reference first: the pre-ISSUE-2 path, traces and
    // runs regenerated per call.
    Config cfg = config();
    cfg.memo = false;
    setConfig(cfg);
    TraceRepo::instance().clear();
    runMemoClear();
    const WorkloadResult off =
        runWorkload(scenarios, scale, seed, reps);

    // Memoized run from a cold cache.
    cfg.memo = true;
    setConfig(cfg);
    TraceRepo::instance().clear();
    runMemoClear();
    const WorkloadResult on = runWorkload(scenarios, scale, seed, reps);
    const RunMemoStats memo = runMemoStats();

    if (!statsEqual(off.section_a, on.section_a) ||
        !statsEqual(off.section_b, on.section_b)) {
        std::fprintf(stderr,
                     "sweep_throughput: memoized sweep output "
                     "DIVERGED from the unmemoized sweep\n");
        return 1;
    }

    const double rate_off = off.scenario_runs / off.seconds;
    const double rate_on = on.scenario_runs / on.seconds;
    const double speedup = off.seconds / on.seconds;

    std::printf("memo off: %8.2f s  (%8.1f scenario-runs/sec)\n",
                off.seconds, rate_off);
    std::printf("memo on:  %8.2f s  (%8.1f scenario-runs/sec)\n",
                on.seconds, rate_on);
    std::printf("speedup:  %8.2fx %s\n", speedup,
                speedup >= 3.0 ? "[target >=3x met]"
                               : "[below 3x target]");
    std::printf("memo: %llu run hits / %llu misses, "
                "trace repo %zu traces\n",
                static_cast<unsigned long long>(memo.run_hits),
                static_cast<unsigned long long>(memo.run_misses),
                TraceRepo::instance().size());

    obs::Manifest manifest("sweep_throughput");
    manifest.set("scenarios",
                 static_cast<std::uint64_t>(scenarios.size()));
    manifest.set("schemes", static_cast<std::uint64_t>(
                                kSectionA.size() + kSectionB.size()));
    manifest.set("reps", reps);
    manifest.set("scale", scale);
    manifest.set("scenario_runs",
                 static_cast<std::uint64_t>(on.scenario_runs));
    manifest.set("memo_off_seconds", off.seconds);
    manifest.set("memo_on_seconds", on.seconds);
    manifest.set("memo_off_runs_per_sec", rate_off);
    manifest.set("memo_on_runs_per_sec", rate_on);
    manifest.set("speedup", speedup);
    manifest.set("bit_identical", true);
    manifest.set("run_memo_hits", memo.run_hits);
    manifest.set("run_memo_misses", memo.run_misses);
    obs::ManifestReporter::finalize(manifest);

    if (speedup < 1.0) {
        std::fprintf(stderr,
                     "sweep_throughput: memoized run is SLOWER than "
                     "the unmemoized baseline (%.2fx)\n",
                     speedup);
        return 1;
    }
    return 0;
}
