/**
 * @file
 * Figure 4 reproduction: the ratio of stream chunks (64B / 512B /
 * 4KB / 32KB) for each single-device workload, measured with the
 * 16K-cycle window classifier of Sec. 3.1.
 *
 * Paper anchors: CPU dominated by 64B (xal the outlier with 19.5%
 * 512B); GPU diverse (mm/sten coarse, syr2k/pr fine, floyd mixed);
 * NPU 32KB-heavy (alex 74.1%, NPU average 64.5% 32KB).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "obs/manifest.hh"
#include "workloads/registry.hh"

using namespace mgmee;

int
main()
{
    std::printf("=== Figure 4: ratio of stream chunks per workload "
                "===\n");
    std::printf("%-8s %-4s   %6s  %6s  %6s  %6s\n", "workload", "dev",
                "64B", "512B", "4KB", "32KB");

    obs::Manifest manifest("fig04_stream_chunks");
    std::uint64_t all_lines[4] = {0, 0, 0, 0};
    double npu_lines[4] = {0, 0, 0, 0};
    for (const WorkloadSpec &spec : allWorkloads()) {
        const Trace trace = generateTrace(spec, 0, bench::envSeed(),
                                          bench::envScale() * 2);
        const TraceProfile p = profileTrace(trace);
        const double total = static_cast<double>(
            p.lines64 + p.lines512 + p.lines4k + p.lines32k);
        std::printf("%-8s %-4s   %5.1f%%  %5.1f%%  %5.1f%%  %5.1f%%\n",
                    spec.name.c_str(), deviceKindName(spec.kind),
                    100.0 * p.lines64 / total,
                    100.0 * p.lines512 / total,
                    100.0 * p.lines4k / total,
                    100.0 * p.lines32k / total);
        manifest.set(spec.name + "_lines64", p.lines64);
        manifest.set(spec.name + "_lines512", p.lines512);
        manifest.set(spec.name + "_lines4k", p.lines4k);
        manifest.set(spec.name + "_lines32k", p.lines32k);
        all_lines[0] += p.lines64;
        all_lines[1] += p.lines512;
        all_lines[2] += p.lines4k;
        all_lines[3] += p.lines32k;
        if (spec.kind == DeviceKind::NPU && spec.name != "yt") {
            npu_lines[0] += static_cast<double>(p.lines64);
            npu_lines[1] += static_cast<double>(p.lines512);
            npu_lines[2] += static_cast<double>(p.lines4k);
            npu_lines[3] += static_cast<double>(p.lines32k);
        }
    }

    const double npu_total =
        npu_lines[0] + npu_lines[1] + npu_lines[2] + npu_lines[3];
    std::printf("\nNPU aggregate 32KB share: %.1f%% "
                "(paper: 64.5%%)\n",
                100.0 * npu_lines[3] / npu_total);

    // Class totals across all workloads: with MGMEE_TRACE set, the
    // decoded StreamChunk events must sum to exactly these (the CI
    // smoke step cross-checks via tools/mgmee-trace-stats).
    manifest.set("total_lines64", all_lines[0]);
    manifest.set("total_lines512", all_lines[1]);
    manifest.set("total_lines4k", all_lines[2]);
    manifest.set("total_lines32k", all_lines[3]);
    manifest.set("npu_32k_share", 100.0 * npu_lines[3] / npu_total);
    obs::ManifestReporter::finalize(manifest);
    return 0;
}
