/**
 * @file
 * Fault-injection campaign: sweep attack class x granularity x engine
 * and report the detection-coverage matrix the paper's security
 * argument (Sec. 2.5) claims.
 *
 * Every cell builds a fresh functional engine, runs one scripted
 * attack (src/fault/injector.cc), and records
 * detected/missed/false-alarm.  The exit status enforces the
 * acceptance bar: the core engines (mgmee, conventional, nvm-mgmee)
 * must detect every applicable single-site tamper class with zero
 * false alarms anywhere (the treeless / secddr-interface baselines
 * may legitimately miss classes -- the matrix says which).
 *
 * Knobs:
 *   MGMEE_FAULT_SEED     master campaign seed (default: MGMEE_SEED,
 *                        then 1); every cell derives its own stream
 *   MGMEE_FAULT_CLASSES  comma-separated attack-class filter, e.g.
 *                        "rollback,splice" (default: all classes)
 *   MGMEE_NVM_PERSIST    persist ordering of the nvm-mgmee engine:
 *                        "wal" (default) or "unordered"
 *   MGMEE_RESULTS_DIR    manifest output directory (default results/)
 *   MGMEE_TRACE          obstrace path: emits one fault_inject event
 *                        per injection and one fault_verdict per cell
 *
 * Output: the matrix on stdout plus
 * `results/manifest_attack_campaign.json` with per-cell verdicts
 * (`cell.<engine>.<class>.<gran>`), the aggregate matrix
 * (`matrix.<engine>.<class>`) and the `core_full_detection` flag,
 * which scripts/check_threat_matrix.py checks docs/THREAT_MODEL.md
 * against.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.hh"
#include "fault/campaign.hh"
#include "obs/manifest.hh"

using namespace mgmee;

namespace {

std::uint64_t
envFaultSeed()
{
    if (config().fault_seed != 0)
        return config().fault_seed;
    return bench::envSeed();
}

std::vector<fault::AttackClass>
envFaultClasses()
{
    std::vector<fault::AttackClass> classes;
    const std::string &spec = config().fault_classes;
    if (spec.empty())
        return classes;  // empty = all
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string name = spec.substr(pos, comma - pos);
        if (!name.empty()) {
            if (const auto cls =
                    fault::parseAttackClass(name.c_str())) {
                classes.push_back(*cls);
            } else {
                std::fprintf(stderr,
                             "attack_campaign: unknown attack class "
                             "'%s' ignored\n",
                             name.c_str());
            }
        }
        pos = comma + 1;
    }
    return classes;
}

} // namespace

int
main()
{
    fault::CampaignConfig cfg;
    cfg.seed = envFaultSeed();
    cfg.classes = envFaultClasses();

    std::printf("attack campaign: %zu engines, seed %llu, region "
                "%zu KB\n\n",
                fault::allEngines().size(),
                static_cast<unsigned long long>(cfg.seed),
                cfg.data_bytes / 1024);

    const fault::CampaignReport report = fault::runCampaign(cfg);

    std::printf("%s\n", report.matrixText().c_str());
    const auto totals = report.verdictTotals();
    std::printf("cells: %u detected, %u missed, %u false-alarm, "
                "%u clean-pass\n",
                totals[0], totals[1], totals[2], totals[3]);

    obs::Manifest manifest("attack_campaign");
    report.fillManifest(manifest);
    obs::ManifestReporter::finalize(manifest);

    if (!report.coreEnginesFullyDetect()) {
        std::fprintf(stderr,
                     "attack_campaign: FAILED -- a core engine "
                     "(mgmee/conventional/nvm-mgmee) missed a tamper "
                     "or a false alarm occurred\n");
        return 1;
    }
    std::printf("core engines: full detection, zero false alarms\n");
    return 0;
}
