/**
 * @file
 * Figure 16 reproduction: mean execution time, data traffic, and
 * security-cache misses versus the prior schemes, normalized to Ours
 * (as the paper plots them).
 *
 * Paper anchors: traffic +7.0% (Adaptive), +6.1% (CommonCTR), +0.2%
 * (BMF&Unused) vs Ours; BMF&Unused+Ours moves 9.5% less than Ours.
 * Security-cache misses: Ours -19.9% vs Adaptive, -17.0% vs
 * CommonCTR, -14.3% vs BMF&Unused; combined -11.2% below Ours.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace mgmee;

int
main()
{
    // The figure's five schemes plus the related-work engines of the
    // extended matrix (MGX derives NPU versions, SecDDR protects the
    // link only) -- extra comparison rows, same normalization.
    const std::vector<Scheme> schemes = {
        Scheme::Adaptive,  Scheme::CommonCTR,
        Scheme::Ours,      Scheme::BmfUnused,
        Scheme::BmfUnusedOurs, Scheme::Mgx, Scheme::SecDdr,
    };
    const auto scenarios = bench::sweepScenarios();
    const auto stats = bench::runSweep(scenarios, schemes,
                                       bench::envScale(),
                                       bench::envSeed());

    const double exec_ours = bench::mean(stats[2].exec_norm);
    const double traffic_ours = bench::mean(stats[2].traffic_norm);
    const double miss_ours = bench::mean(stats[2].misses);

    std::printf("=== Figure 16: comparison with prior studies "
                "(normalized to Ours, %zu scenarios) ===\n",
                scenarios.size());
    std::printf("%-20s %10s %10s %14s\n", "scheme", "exec", "traffic",
                "sec-misses");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        std::printf("%-20s %9.3fx %9.3fx %13.3fx\n",
                    schemeName(schemes[i]),
                    bench::mean(stats[i].exec_norm) / exec_ours,
                    bench::mean(stats[i].traffic_norm) / traffic_ours,
                    bench::mean(stats[i].misses) / miss_ours);
    }
    std::printf("\nAbsolute (vs unsecure): Ours exec %.3fx, traffic "
                "%.3fx\n",
                exec_ours, traffic_ours);
    return 0;
}
