/**
 * @file
 * Cross-validation of the two NPU trace models: the statistical
 * generators calibrated to the paper's Fig. 4 mixes, and the
 * independent layer-accurate model built from actual network shapes
 * (workloads/nn_layers).  Agreement on the stream-chunk composition
 * is evidence that the calibrated substrate reflects real tiled NN
 * execution rather than a curve fit.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/nn_layers.hh"
#include "workloads/registry.hh"

using namespace mgmee;

namespace {

void
printProfile(const char *label, const TraceProfile &p)
{
    const double total = static_cast<double>(
        p.lines64 + p.lines512 + p.lines4k + p.lines32k);
    std::printf("  %-22s %6.1f%% %6.1f%% %6.1f%% %6.1f%%   "
                "(%llu reqs, %.0f%% writes)\n",
                label, 100 * p.lines64 / total,
                100 * p.lines512 / total, 100 * p.lines4k / total,
                100 * p.lines32k / total,
                static_cast<unsigned long long>(p.requests),
                100.0 * static_cast<double>(p.writes) /
                    static_cast<double>(p.requests));
}

} // namespace

int
main()
{
    const NpuConfig cfg;  // Table 3 defaults
    struct Pair
    {
        const char *workload;
        std::vector<NnLayer> layers;
    };
    const Pair pairs[] = {
        {"alex", alexNetLayers()},
        {"yt", yoloTinyLayers()},
        {"dlrm", dlrmLayers()},
        {"ncf", ncfLayers()},
        {"sfrnn", sfrnnLayers()},
    };

    std::printf("=== NPU trace cross-validation: statistical vs "
                "layer-accurate ===\n");
    std::printf("  %-22s %6s %6s %6s %6s\n", "model", "64B", "512B",
                "4KB", "32KB");
    for (const Pair &p : pairs) {
        printProfile(
            (std::string(p.workload) + " (statistical)").c_str(),
            profileTrace(generateTrace(findWorkload(p.workload), 0,
                                       bench::envSeed(), 1.0)));
        printProfile(
            (std::string(p.workload) + " (layer model)").c_str(),
            profileTrace(generateNnTrace(p.layers, cfg, 0,
                                         bench::envSeed())));

        // Footprint summary from the analytical model.
        std::size_t weights = 0;
        std::uint64_t macs = 0;
        for (const NnLayer &l : p.layers) {
            const LayerTraffic t = analyzeLayer(l);
            weights += t.weight_bytes;
            macs += t.macs;
        }
        std::printf("  %-22s weights %.2f MB, %.1f GMACs\n\n", "",
                    static_cast<double>(weights) / (1 << 20),
                    static_cast<double>(macs) * 1e-9);
    }
    std::printf(
        "(The layer model is independent of the Fig. 4 calibration; "
        "both agree that CNNs/RNNs are\ncoarse-dominated and "
        "recommenders mix fine gathers with coarse MLP streams.  The "
        "ideal\ntiling is *coarser* than the calibrated mixes -- the "
        "statistical model's extra fine share\nmodels im2col, halo "
        "reads and partial tiles that perfect tiling omits, matching "
        "the\npaper's measured 74.1%% for alex rather than the "
        "theoretical optimum.)\n");
    return 0;
}
