/**
 * @file
 * Shared scaffolding for the per-figure/table reproduction benches:
 * environment-variable knobs, scenario sweeps, and small formatting
 * helpers.
 *
 * Knobs:
 *   MGMEE_SCENARIOS  cap on the number of scenarios swept (default:
 *                    all 250)
 *   MGMEE_SCALE      trace-length multiplier (default 0.5 -- a full
 *                    sweep finishes in seconds; raise for smoother
 *                    statistics)
 *   MGMEE_SEED       base RNG seed (default 1)
 *   MGMEE_THREADS    worker threads for scenario sweeps (default:
 *                    all hardware threads; set 1 to force a serial
 *                    run -- results are bit-identical either way;
 *                    parsed by common/threads.hh)
 *   MGMEE_SHARDS     > 0 routes runSweep through the sharded event
 *                    scheduler (sim/sharded_sweep.hh) with that many
 *                    memory-channel shards; 0/unset keeps the
 *                    monolithic closed-loop path
 *   MGMEE_QUANTUM    scheduler time window when sharding is on
 */

#ifndef MGMEE_BENCH_BENCH_UTIL_HH
#define MGMEE_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/threads.hh"
#include "hetero/metrics.hh"
#include "hetero/run_memo.hh"
#include "obs/telemetry.hh"
#include "sim/sharded_sweep.hh"

namespace mgmee::bench {

inline double
envScale()
{
    return config().scale;
}

inline std::uint64_t
envSeed()
{
    return config().seed;
}

/** MGMEE_THREADS, shared with the scheduler and fault campaign
 *  (common/threads.hh). */
inline unsigned
envThreads()
{
    return mgmee::envThreads();
}

/**
 * The extended engine matrix: the Table-5 schemes plus the
 * related-work engines (MGX, SecDDR).  For the comparison benches
 * only -- the perf-diff CI gates pin the manifests of the
 * kMainSchemes benches, so those must keep sweeping kMainSchemes
 * verbatim.
 */
inline std::vector<Scheme>
engineMatrixSchemes()
{
    std::vector<Scheme> schemes(kMainSchemes.begin(),
                                kMainSchemes.end());
    schemes.insert(schemes.end(), kRelatedWorkSchemes.begin(),
                   kRelatedWorkSchemes.end());
    return schemes;
}

inline std::vector<Scenario>
sweepScenarios()
{
    std::vector<Scenario> all = allScenarios();
    const std::size_t n = config().scenarios;
    if (n > 0 && n < all.size()) {
        // Take an evenly spaced subsample to stay representative.
        std::vector<Scenario> subset;
        for (std::size_t i = 0; i < n; ++i)
            subset.push_back(all[i * all.size() / n]);
        return subset;
    }
    return all;
}

/** Normalized metrics of one scheme over a scenario sweep. */
struct SweepStats
{
    std::vector<double> exec_norm;     //!< vs unsecure
    std::vector<double> traffic_norm;  //!< vs unsecure
    std::vector<double> misses;        //!< raw security-cache misses
};

inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double s = 0;
    for (double x : v)
        s += x;
    return s / v.size();
}

/** Percentile of an ALREADY SORTED sample (linear interpolation). */
inline double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const double idx = p * (sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - lo;
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

/** Percentile of an unsorted sample (sorts a copy; when extracting
 *  several percentiles, sort once and use percentileSorted). */
inline double
percentile(std::vector<double> v, double p)
{
    std::sort(v.begin(), v.end());
    return percentileSorted(v, p);
}

/**
 * Run @p schemes over @p scenarios; index [scheme][scenario].
 *
 * Work is dispatched as flat (scenario x scheme) items, so the
 * schemes of one slow scenario fan out across workers instead of
 * serialising on whichever worker drew the scenario.  The
 * per-scenario shared pieces (the Unsecure baseline and the optional
 * static-best search) are computed once per scenario behind a
 * std::once_flag; the first worker to need them runs them, later
 * items reuse the stored values.  Results are written by
 * [scheme][scenario] index and every simulation is deterministic, so
 * output is bit-identical for any thread count (and with the
 * process-wide memo on or off -- tests/sweep_memo_test.cc).
 */
inline std::vector<SweepStats>
runSweep(const std::vector<Scenario> &scenarios,
         const std::vector<Scheme> &schemes, double scale,
         std::uint64_t seed, bool use_static_best_search = false)
{
    std::vector<SweepStats> out(schemes.size());
    for (auto &stats : out) {
        stats.exec_norm.resize(scenarios.size());
        stats.traffic_norm.resize(scenarios.size());
        stats.misses.resize(scenarios.size());
    }
    if (scenarios.empty() || schemes.empty())
        return out;

    // MGMEE_SHARDS > 0 opts into the sharded event scheduler: the
    // runs themselves decompose across per-channel shards instead of
    // only fanning whole runs across workers.  A different (and
    // separately memoized) timing model -- see sim/sharded_sweep.hh.
    if (const unsigned shards = mgmee::envShards(); shards > 0) {
        sim::ShardedSweepConfig cfg;
        cfg.seed = seed;
        cfg.scale = scale;
        cfg.threads = mgmee::envThreads();
        cfg.shards = shards;
        cfg.quantum = mgmee::envQuantum();
        cfg.use_static_best_search = use_static_best_search;
        const sim::ShardedSweepResult res =
            sim::runShardedSweep(scenarios, schemes, cfg);
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            for (std::size_t s = 0; s < scenarios.size(); ++s) {
                const RunResult &r = res.results[i][s];
                const RunResult &u = res.unsecure[s];
                out[i].exec_norm[s] = normalizedExecTime(r, u);
                out[i].traffic_norm[s] =
                    u.total_bytes
                        ? static_cast<double>(r.total_bytes) /
                              static_cast<double>(u.total_bytes)
                        : 1.0;
                out[i].misses[s] =
                    static_cast<double>(r.security_misses);
            }
        }
        return out;
    }

    // Per-scenario shared state, filled lazily under a once_flag.
    std::vector<RunResult> unsec(scenarios.size());
    std::vector<std::array<Granularity, 8>> static_best(
        scenarios.size());
    std::unique_ptr<std::once_flag[]> prepared(
        new std::once_flag[scenarios.size()]);

    const std::size_t total = scenarios.size() * schemes.size();
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (std::size_t w = next.fetch_add(1); w < total;
             w = next.fetch_add(1)) {
            const std::size_t s = w / schemes.size();
            const std::size_t i = w % schemes.size();
            const Scenario &sc = scenarios[s];
            if (obs::telemetryEnabled()) {
                // Current-cell marker for the HUD / interval notes;
                // one branch when telemetry is off.
                obs::telemetryNote(std::string(schemeName(schemes[i]))
                                   + '/' + sc.id);
                StatRegistry::instance()
                    .sharded("sweep", "cells")
                    .add(1);
            }
            std::call_once(prepared[s], [&]() {
                unsec[s] = runScenarioMemo(sc, Scheme::Unsecure,
                                           seed, scale);
                if (use_static_best_search)
                    static_best[s] =
                        searchStaticBest(sc, seed, scale);
            });
            const RunResult r = runScenarioMemo(
                sc, schemes[i], seed, scale, static_best[s]);
            out[i].exec_norm[s] = normalizedExecTime(r, unsec[s]);
            out[i].traffic_norm[s] =
                static_cast<double>(r.total_bytes) /
                static_cast<double>(unsec[s].total_bytes);
            out[i].misses[s] =
                static_cast<double>(r.security_misses);
        }
    };

    const unsigned threads = std::max<unsigned>(
        1u, std::min<std::size_t>(envThreads(), total));
    std::vector<std::thread> pool;
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();
    return out;
}

inline void
printCdf(const char *title, const std::vector<Scheme> &schemes,
         const std::vector<SweepStats> &stats)
{
    std::printf("%s\n", title);
    std::printf("%-28s", "percentile");
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        std::printf("   p%-4.0f", p * 100);
    std::printf("   mean\n");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        std::printf("%-28s", schemeName(schemes[i]));
        // Sort once per scheme; each percentile is then an index.
        std::vector<double> sorted = stats[i].exec_norm;
        std::sort(sorted.begin(), sorted.end());
        for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
            std::printf("  %6.3f", percentileSorted(sorted, p));
        std::printf("  %6.3f\n", mean(stats[i].exec_norm));
    }
}

} // namespace mgmee::bench

#endif // MGMEE_BENCH_BENCH_UTIL_HH
