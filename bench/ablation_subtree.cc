/**
 * @file
 * Ablation: the subtree optimizations layered on the multi-granular
 * engine (Sec. 2.4 / Fig. 3) -- BMF-style root-cache size and pinning
 * level, and PENGLAI-style unused-region pruning.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/multigran_engine.hh"
#include "hetero/hetero_system.hh"

using namespace mgmee;

namespace {

double
runWith(const Scenario &sc, unsigned root_entries,
        unsigned root_level, bool unused, const RunResult &unsec)
{
    MultiGranEngineConfig cfg;
    cfg.timing.parallel_walk = true;
    cfg.timing.root_cache_entries = root_entries;
    cfg.timing.root_cache_level = root_level;
    cfg.timing.unused_pruning = unused;
    auto engine = std::make_unique<MultiGranEngine>(
        "ours", scenarioDataBytes(), cfg);
    HeteroSystem sys(buildDevices(sc, bench::envSeed(),
                                  bench::envScale()),
                     std::move(engine));
    sys.run();
    RunResult r;
    r.device_finish = sys.deviceFinishTimes();
    return normalizedExecTime(r, unsec);
}

} // namespace

int
main()
{
    const Scenario scenarios[] = {
        {"cc1", "xal", "mm", "alex", "dlrm"},
        {"ff2", "mcf", "syr2k", "sfrnn", "dlrm"},
    };

    for (const Scenario &sc : scenarios) {
        const RunResult unsec = runScenario(
            sc, Scheme::Unsecure, bench::envSeed(), bench::envScale());

        std::printf("=== %s: subtree-root cache sweep (unused "
                    "pruning off) ===\n",
                    sc.id.c_str());
        std::printf("%8s", "entries");
        for (unsigned lvl : {1, 2, 3, 4})
            std::printf("   level=%u", lvl);
        std::printf("\n");
        for (unsigned entries : {0, 16, 64, 256}) {
            std::printf("%8u", entries);
            for (unsigned lvl : {1, 2, 3, 4}) {
                std::printf("   %6.3fx",
                            runWith(sc, entries, lvl, false, unsec));
            }
            std::printf("%s\n",
                        entries == 64 ? "   <- paper-combo size" : "");
        }

        std::printf("unused pruning alone: %.3fx; combined "
                    "(64@L3 + pruning): %.3fx\n\n",
                    runWith(sc, 0, 3, true, unsec),
                    runWith(sc, 64, 3, true, unsec));
    }
    return 0;
}
