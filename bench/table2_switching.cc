/**
 * @file
 * Table 2 reproduction: classification of granularity-switching
 * events and their additional-fetch classes, measured over the
 * scenario sweep with the full dynamic engine.
 *
 * Paper anchors: 73.5% correct predictions; scale-down all-types
 * 4.4%; scale-up WAR 5.1% / WAW 3.0% / RAR 8.8% / RAW 5.2%.  MAC
 * side: coarse->fine read-only 1.6%, written 2.8%, fine->coarse
 * 22.1%.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/multigran_engine.hh"
#include "hetero/hetero_system.hh"

using namespace mgmee;

int
main()
{
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();
    std::vector<Scenario> scenarios = bench::sweepScenarios();
    if (scenarios.size() > 50) {
        std::vector<Scenario> s;
        for (std::size_t i = 0; i < 50; ++i)
            s.push_back(scenarios[i * scenarios.size() / 50]);
        scenarios = s;
    }

    StatGroup totals("switch");
    for (const Scenario &sc : scenarios) {
        auto engine = makeEngine(Scheme::Ours, scenarioDataBytes());
        auto *mg = dynamic_cast<MultiGranEngine *>(engine.get());
        HeteroSystem sys(buildDevices(sc, seed, scale),
                         std::move(engine));
        sys.run();
        totals.merge(
            dynamic_cast<const MultiGranEngine &>(sys.engine())
                .switchModel()
                .stats());
        (void)mg;
    }

    auto pct = [&](const char *stat, double denom) {
        return 100.0 * static_cast<double>(totals.get(stat)) / denom;
    };

    double ctr_total = 0;
    for (const char *s :
         {"ctr.correct", "ctr.coarse_to_fine_all",
          "ctr.fine_to_coarse_war", "ctr.fine_to_coarse_waw",
          "ctr.fine_to_coarse_rar", "ctr.fine_to_coarse_raw"})
        ctr_total += static_cast<double>(totals.get(s));

    std::printf("=== Table 2: granularity-switching overhead classes "
                "===\n");
    std::printf("Counter and integrity tree  (paper ratios in "
                "parens)\n");
    std::printf("  %-28s %6.1f%%  (73.5%%)\n", "correct prediction",
                pct("ctr.correct", ctr_total));
    std::printf("  %-28s %6.1f%%  ( 4.4%%)   zero: lazy switching\n",
                "coarse->fine (all)",
                pct("ctr.coarse_to_fine_all", ctr_total));
    std::printf("  %-28s %6.1f%%  ( 5.1%%)   zero: lazy switching\n",
                "fine->coarse WAR",
                pct("ctr.fine_to_coarse_war", ctr_total));
    std::printf("  %-28s %6.1f%%  ( 3.0%%)   zero: lazy switching\n",
                "fine->coarse WAW",
                pct("ctr.fine_to_coarse_waw", ctr_total));
    std::printf("  %-28s %6.1f%%  ( 8.8%%)   fetch parent..root\n",
                "fine->coarse RAR",
                pct("ctr.fine_to_coarse_rar", ctr_total));
    std::printf("  %-28s %6.1f%%  ( 5.2%%)   fetch parent..root "
                "(cached)\n",
                "fine->coarse RAW",
                pct("ctr.fine_to_coarse_raw", ctr_total));

    double mac_total = 0;
    for (const char *s :
         {"mac.correct", "mac.coarse_to_fine_ro",
          "mac.coarse_to_fine_rw", "mac.fine_to_coarse"})
        mac_total += static_cast<double>(totals.get(s));

    std::printf("Message authentication code\n");
    std::printf("  %-28s %6.1f%%  (73.5%%)\n", "correct prediction",
                pct("mac.correct", mac_total));
    std::printf("  %-28s %6.1f%%  ( 1.6%%)   fetch fine MACs\n",
                "coarse->fine read-only",
                pct("mac.coarse_to_fine_ro", mac_total));
    std::printf("  %-28s %6.1f%%  ( 2.8%%)   fetch whole data chunk\n",
                "coarse->fine written",
                pct("mac.coarse_to_fine_rw", mac_total));
    std::printf("  %-28s %6.1f%%  (22.1%%)   zero: lazy switching\n",
                "fine->coarse (all)",
                pct("mac.fine_to_coarse", mac_total));

    const double mispred =
        100.0 - pct("ctr.correct", ctr_total);
    std::printf("\nMisprediction probability: %.1f%% (paper: "
                "26.5%%)\n",
                mispred);
    return 0;
}
