/**
 * @file
 * Figure 17 reproduction: CDF of the performance-breakdown schemes --
 * Conventional, Static-device-best, Multi(CTR)-only, Ours, and
 * BMF&Unused+Ours -- over the scenario sweep.
 *
 * Paper anchors: security overhead falls 33.9% (Conventional) ->
 * 19.6% (Ours) -> 12.7% (BMF&Unused+Ours); Static-device-best only
 * recovers 7.5%; Multi(CTR)-only recovers 6.5%.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/config.hh"

using namespace mgmee;

int
main()
{
    const std::vector<Scheme> schemes = {
        Scheme::Conventional, Scheme::StaticDeviceBest,
        Scheme::MultiCtrOnly, Scheme::Ours, Scheme::BmfUnusedOurs,
    };
    auto scenarios = bench::sweepScenarios();
    // Static-device-best needs a 4-granularity search per scenario;
    // cap the sweep so the default run stays fast.
    if (scenarios.size() > 60 && config().scenarios == 0) {
        std::vector<Scenario> s;
        for (std::size_t i = 0; i < 60; ++i)
            s.push_back(scenarios[i * scenarios.size() / 60]);
        scenarios = s;
    }
    const auto stats =
        bench::runSweep(scenarios, schemes, bench::envScale(),
                        bench::envSeed(), /*static_best=*/true);

    char title[128];
    std::snprintf(title, sizeof(title),
                  "=== Figure 17: performance-breakdown CDF (%zu "
                  "scenarios) ===",
                  scenarios.size());
    bench::printCdf(title, schemes, stats);

    const double conv = bench::mean(stats[0].exec_norm);
    std::printf("\noverhead vs unsecure: Conventional %.1f%% "
                "(paper 33.9%%), Static-best %.1f%%, "
                "Multi(CTR) %.1f%%, Ours %.1f%% (paper 19.6%%), "
                "BMF&U+Ours %.1f%% (paper 12.7%%)\n",
                100 * (conv - 1),
                100 * (bench::mean(stats[1].exec_norm) - 1),
                100 * (bench::mean(stats[2].exec_norm) - 1),
                100 * (bench::mean(stats[3].exec_norm) - 1),
                100 * (bench::mean(stats[4].exec_norm) - 1));
    return 0;
}
