/**
 * @file
 * google-benchmark microbenchmarks of the engine primitives: AES OTP
 * generation (scalar and batched), SipHash MACs (scalar and staged
 * through MacBatch), nested (coarse) MACs, Algorithm-1 detection,
 * address computation, and functional read/write paths.
 *
 * Every run emits results/manifest_micro_primitives.json: per
 * benchmark the ns/iteration and -- for the data-plane benches, which
 * all SetBytesProcessed() -- the bytes/s figure, so CI can diff
 * primitive throughput across commits like any other manifest.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "core/access_tracker.hh"
#include "core/address_computer.hh"
#include "crypto/batch.hh"
#include "crypto/mac.hh"
#include "crypto/otp.hh"
#include "hetero/metrics.hh"
#include "mee/secure_memory.hh"
#include "obs/manifest.hh"
#include "tree/split_counter.hh"

namespace {

using namespace mgmee;

Aes128::Key
benchAesKey()
{
    Aes128::Key k{};
    for (unsigned i = 0; i < 16; ++i)
        k[i] = static_cast<std::uint8_t>(i);
    return k;
}

void
BM_OtpGeneration(benchmark::State &state)
{
    OtpGenerator gen(benchAesKey());
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.makePad(addr, 1));
        addr += kCachelineBytes;
    }
    state.SetBytesProcessed(state.iterations() * kCachelineBytes);
}
BENCHMARK(BM_OtpGeneration);

void
BM_OtpGenerationBatched(benchmark::State &state)
{
    // Batched counterpart: one makePadsSeq() call per 64 pads keeps
    // the dispatched AES kernel's pipeline full.
    OtpGenerator gen(benchAesKey());
    std::array<Pad, 64> pads;
    Addr addr = 0;
    for (auto _ : state) {
        gen.makePadsSeq(addr, pads.size(), 1, pads.data());
        benchmark::DoNotOptimize(pads[0][0]);
        addr += pads.size() * kCachelineBytes;
    }
    state.SetBytesProcessed(state.iterations() * pads.size() *
                            kCachelineBytes);
}
BENCHMARK(BM_OtpGenerationBatched);

void
BM_LineMac(benchmark::State &state)
{
    MacEngine mac({1, 2});
    std::uint8_t data[kCachelineBytes] = {};
    std::uint64_t ctr = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(mac.lineMac(0x1000, ++ctr, data));
    state.SetBytesProcessed(state.iterations() * kCachelineBytes);
}
BENCHMARK(BM_LineMac);

void
BM_LineMacBatched(benchmark::State &state)
{
    // A full MacBatch staging buffer drained per iteration (the
    // multi-lane SipHash path).
    MacEngine mac({1, 2});
    std::array<std::uint8_t, kCachelineBytes> data{};
    std::array<Mac, crypto::MacBatch::kCapacity> out;
    for (auto _ : state) {
        crypto::MacBatch batch = mac.batch();
        for (std::size_t i = 0; i < out.size(); ++i)
            batch.line(i * kCachelineBytes, 1, data.data(), &out[i]);
        batch.flush();
        benchmark::DoNotOptimize(out[0]);
    }
    state.SetBytesProcessed(state.iterations() * out.size() *
                            kCachelineBytes);
}
BENCHMARK(BM_LineMacBatched);

void
BM_NestedMac(benchmark::State &state)
{
    MacEngine mac({1, 2});
    std::vector<Mac> fine(state.range(0), 0x42);
    for (auto _ : state)
        benchmark::DoNotOptimize(mac.nestedMac(fine));
    state.SetBytesProcessed(state.iterations() * state.range(0) *
                            static_cast<std::int64_t>(sizeof(Mac)));
}
BENCHMARK(BM_NestedMac)->Arg(8)->Arg(64)->Arg(512);

void
BM_DetectGranularity(benchmark::State &state)
{
    AccessTracker::BitVector bits;
    bits.fill(0xff00ff00ff00ff00ull);
    for (auto _ : state)
        benchmark::DoNotOptimize(detectGranularity(bits));
}
BENCHMARK(BM_DetectGranularity);

void
BM_AccessTracker(benchmark::State &state)
{
    AccessTracker tracker;
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        tracker.recordAccess(addr, ++now);
        addr += kCachelineBytes;
    }
}
BENCHMARK(BM_AccessTracker);

void
BM_MacAddressCompute(benchmark::State &state)
{
    MetadataLayout layout(256 * kChunkBytes);
    AddressComputer ac(layout);
    const StreamPart sp = 0x00ff00ff00ff00ffull;
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ac.macLoc(addr, sp));
        addr = (addr + kCachelineBytes) % (256 * kChunkBytes);
    }
}
BENCHMARK(BM_MacAddressCompute);

void
BM_CounterAddressCompute(benchmark::State &state)
{
    MetadataLayout layout(256 * kChunkBytes);
    AddressComputer ac(layout);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ac.counterLocAt(addr, Granularity::Sub4KB));
        addr = (addr + kCachelineBytes) % (256 * kChunkBytes);
    }
}
BENCHMARK(BM_CounterAddressCompute);

void
BM_SecureWriteLine(benchmark::State &state)
{
    SecureMemory::Keys keys;
    keys.aes = benchAesKey();
    keys.mac = {3, 4};
    SecureMemory mem(64 * kChunkBytes, keys);
    std::vector<std::uint8_t> line(kCachelineBytes, 0x5a);
    Addr addr = 0;
    for (auto _ : state) {
        mem.write(addr, line);
        addr = (addr + kCachelineBytes) % (64 * kChunkBytes);
    }
    state.SetBytesProcessed(state.iterations() * kCachelineBytes);
}
BENCHMARK(BM_SecureWriteLine);

void
BM_SecureReadChunkCoarse(benchmark::State &state)
{
    SecureMemory::Keys keys;
    keys.aes = benchAesKey();
    keys.mac = {3, 4};
    SecureMemory mem(16 * kChunkBytes, keys);
    std::vector<std::uint8_t> buf(kChunkBytes, 1);
    mem.write(0, buf);
    mem.applyStreamPart(0, kAllStream);
    for (auto _ : state)
        mem.read(0, buf);
    state.SetBytesProcessed(state.iterations() * kChunkBytes);
}
BENCHMARK(BM_SecureReadChunkCoarse);

void
BM_TreeReadWalkCold(benchmark::State &state)
{
    // Cold walks: every level misses the metadata cache.
    SecureMemory::Keys keys;
    keys.aes = benchAesKey();
    keys.mac = {3, 4};
    SecureMemory mem(64 * kChunkBytes, keys);
    std::vector<std::uint8_t> out(kCachelineBytes);
    Addr addr = 0;
    for (auto _ : state) {
        mem.read(addr, out);
        addr = (addr + kSubchunkBytes) % (64 * kChunkBytes);
    }
}
BENCHMARK(BM_TreeReadWalkCold);

void
BM_SplitCounterBump(benchmark::State &state)
{
    SplitCounterLine line(7);
    unsigned slot = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(line.bump(slot));
        slot = (slot + 1) % kTreeArity;
    }
}
BENCHMARK(BM_SplitCounterBump);

void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h;
    std::uint64_t v = 1;
    for (auto _ : state) {
        h.record(v);
        v = v * 2862933555777941757ULL + 3037000493ULL;
        v >>= 40;
    }
    benchmark::DoNotOptimize(h.percentile(0.5));
}
BENCHMARK(BM_HistogramRecord);

void
BM_ScenarioRun(benchmark::State &state)
{
    // End-to-end cost of one scheme on one scenario at small scale.
    const Scenario sc{"cc1", "xal", "mm", "alex", "dlrm"};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runScenario(sc, Scheme::Ours, 1, 0.1));
    }
}
BENCHMARK(BM_ScenarioRun)->Unit(benchmark::kMillisecond);

/**
 * Console output plus a captured (name, ns/iter, bytes/s) row per
 * run, dumped into the obs manifest after the suite finishes.
 */
class ManifestReporter final : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        std::string name;
        double ns_per_iter = 0;
        double bytes_per_second = 0;  //!< 0 = bench reports no bytes
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.error_occurred || r.iterations == 0)
                continue;
            Row row;
            row.name = r.benchmark_name();
            row.ns_per_iter = r.real_accumulated_time /
                              static_cast<double>(r.iterations) * 1e9;
            const auto it = r.counters.find("bytes_per_second");
            if (it != r.counters.end())
                row.bytes_per_second = it->second.value;
            rows_.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<Row> &rows() const { return rows_; }

  private:
    std::vector<Row> rows_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ManifestReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    obs::Manifest m("micro_primitives");
    m.set("benchmarks",
          static_cast<std::uint64_t>(reporter.rows().size()));
    for (const ManifestReporter::Row &row : reporter.rows()) {
        m.set(row.name + ".ns_per_iter", row.ns_per_iter);
        if (row.bytes_per_second > 0)
            m.set(row.name + ".bytes_per_second",
                  row.bytes_per_second);
    }
    obs::ManifestReporter::finalize(m);
    return 0;
}
