/**
 * @file
 * Crypto data-plane throughput: GB/s of each primitive and engine
 * path, measured per ISA tier (portable reference vs the dispatched
 * AES-NI/VAES + multi-lane SipHash kernels, crypto/dispatch.hh).
 *
 * Measured per tier:
 *   aes_blocks   Aes128::encryptBlocks over a 64 KiB block run
 *   otp_pads     OtpGenerator::makePadsSeq, one chunk of pads per call
 *   sip_x4       sipHash24x4 over 80 B messages (the MAC message size)
 *   sip_scalar   scalar sipHash24 over the same messages
 *   mac_batch    MacBatch stage+flush of one chunk of line MACs
 *   mac_scalar   the equivalent scalar MacEngine::lineMac loop
 *   engine_write SecureMemory streaming chunk writes (full data plane)
 *   engine_read  SecureMemory verified chunk reads
 *
 * Emits results/manifest_crypto_throughput.json.  With
 * MGMEE_ENFORCE_CRYPTO=1 (the CI gate, only meaningful when the CPU
 * has a SIMD tier) the run fails unless the batched AES path -- raw
 * blocks and OTP pads -- reaches 3x the portable-scalar tier, and the
 * lane/batched SipHash paths at least match their scalar baselines.
 *
 * Knobs: MGMEE_SEED (key material), MGMEE_CRYPTO is deliberately
 * ignored here -- tiers are forced via setDispatchOverride().
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/config.hh"
#include "common/types.hh"
#include "crypto/batch.hh"
#include "crypto/dispatch.hh"
#include "crypto/mac.hh"
#include "crypto/otp.hh"
#include "mee/secure_memory.hh"
#include "obs/manifest.hh"

namespace {

using namespace mgmee;

/** Seconds of steady-clock time spent in @p fn. */
template <typename Fn>
double
secondsOf(Fn &&fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * GB/s of @p fn, which processes @p bytes_per_iter per call: one
 * warmup call, then repeat until ~80 ms of measured time.
 */
template <typename Fn>
double
throughputGbps(std::size_t bytes_per_iter, Fn &&fn)
{
    fn();  // warmup (page faults, first-use dispatch)
    std::size_t iters = 1;
    double secs = 0;
    for (;;) {
        secs = secondsOf([&] {
            for (std::size_t i = 0; i < iters; ++i)
                fn();
        });
        if (secs >= 0.08)
            break;
        iters *= 4;
    }
    const double bytes =
        static_cast<double>(bytes_per_iter) * static_cast<double>(iters);
    return bytes / secs / 1e9;
}

/** All throughput figures of one ISA tier. */
struct TierResult
{
    crypto::Isa isa;
    double aes_blocks = 0;
    double otp_pads = 0;
    double sip_x4 = 0;
    double sip_scalar = 0;
    double mac_batch = 0;
    double mac_scalar = 0;
    double engine_write = 0;
    double engine_read = 0;
};

SecureMemory::Keys
benchKeys(std::uint64_t seed)
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < keys.aes.size(); ++i)
        keys.aes[i] = static_cast<std::uint8_t>(seed >> (8 * (i % 8)))
                      ^ static_cast<std::uint8_t>(0x5a + i);
    keys.mac.k0 = seed * 0x9e3779b97f4a7c15ULL + 1;
    keys.mac.k1 = seed ^ 0xdeadbeefcafef00dULL;
    return keys;
}

TierResult
measureTier(crypto::Isa isa, const SecureMemory::Keys &keys)
{
    crypto::setDispatchOverride(isa);
    TierResult r;
    r.isa = isa;

    // Raw AES block encryption, 4096 blocks (64 KiB) per call.
    {
        const Aes128 aes(keys.aes);
        std::vector<std::uint8_t> buf(4096 * 16, 0x3c);
        r.aes_blocks = throughputGbps(buf.size(), [&] {
            aes.encryptBlocks(std::span<std::uint8_t>(buf));
        });
    }

    // OTP pad generation, one chunk of pads per call.
    {
        const OtpGenerator otp(keys.aes);
        std::vector<Pad> pads(kLinesPerChunk);
        r.otp_pads =
            throughputGbps(pads.size() * kCachelineBytes, [&] {
                otp.makePadsSeq(0, pads.size(), 7, pads.data());
            });
    }

    // SipHash over the 80 B MAC message, 4 lanes vs scalar.
    {
        constexpr std::size_t kMsg = crypto::MacBatch::kMsgBytes;
        std::uint8_t msgs[4][kMsg];
        for (unsigned m = 0; m < 4; ++m)
            std::memset(msgs[m], 0x11 * (m + 1), kMsg);
        const std::uint8_t *ptrs[4] = {msgs[0], msgs[1], msgs[2],
                                       msgs[3]};
        std::uint64_t out[4];
        r.sip_x4 = throughputGbps(64 * 4 * kMsg, [&] {
            for (unsigned rep = 0; rep < 64; ++rep)
                sipHash24x4(keys.mac, ptrs, kMsg, out);
        });
        volatile std::uint64_t sink = 0;
        r.sip_scalar = throughputGbps(64 * 4 * kMsg, [&] {
            for (unsigned rep = 0; rep < 64; ++rep)
                for (unsigned m = 0; m < 4; ++m)
                    sink = sipHash24(keys.mac, msgs[m], kMsg);
        });
        (void)sink;
    }

    // MacBatch drain vs the scalar lineMac loop, one chunk of lines.
    {
        const MacEngine mac(keys.mac);
        std::vector<std::uint8_t> data(kLinesPerChunk *
                                       kCachelineBytes,
                                       0x77);
        std::vector<Mac> macs(kLinesPerChunk);
        const std::size_t bytes =
            kLinesPerChunk * crypto::MacBatch::kMsgBytes;
        r.mac_batch = throughputGbps(bytes, [&] {
            crypto::MacBatch batch = mac.batch();
            for (std::size_t l = 0; l < kLinesPerChunk; ++l)
                batch.line(l * kCachelineBytes, 3,
                           data.data() + l * kCachelineBytes,
                           &macs[l]);
            batch.flush();
        });
        r.mac_scalar = throughputGbps(bytes, [&] {
            for (std::size_t l = 0; l < kLinesPerChunk; ++l)
                macs[l] = mac.lineMac(l * kCachelineBytes, 3,
                                      data.data() +
                                          l * kCachelineBytes);
        });
    }

    // Full engine data plane: streaming chunk writes and verified
    // reads through SecureMemory (pads + fine MACs + tree walk).
    {
        SecureMemory mem(4 * kChunkBytes, keys);
        std::vector<std::uint8_t> buf(kChunkBytes, 0xab);
        r.engine_write = throughputGbps(4 * kChunkBytes, [&] {
            for (unsigned c = 0; c < 4; ++c)
                mem.write(c * kChunkBytes,
                          std::span<const std::uint8_t>(buf));
        });
        r.engine_read = throughputGbps(4 * kChunkBytes, [&] {
            for (unsigned c = 0; c < 4; ++c)
                mem.read(c * kChunkBytes,
                         std::span<std::uint8_t>(buf));
        });
    }

    crypto::clearDispatchOverride();
    return r;
}

void
addTier(obs::Manifest &m, const TierResult &r)
{
    const std::string p = std::string(crypto::isaName(r.isa)) + ".";
    m.set(p + "aes_blocks_gbps", r.aes_blocks);
    m.set(p + "otp_pads_gbps", r.otp_pads);
    m.set(p + "sip_x4_gbps", r.sip_x4);
    m.set(p + "sip_scalar_gbps", r.sip_scalar);
    m.set(p + "mac_batch_gbps", r.mac_batch);
    m.set(p + "mac_scalar_gbps", r.mac_scalar);
    m.set(p + "engine_write_gbps", r.engine_write);
    m.set(p + "engine_read_gbps", r.engine_read);
}

} // namespace

int
main()
{
    const SecureMemory::Keys keys = benchKeys(bench::envSeed());
    const crypto::Isa best = crypto::bestSupportedIsa();

    std::vector<TierResult> tiers;
    for (std::uint8_t i = 0;
         i <= static_cast<std::uint8_t>(best); ++i)
        tiers.push_back(
            measureTier(static_cast<crypto::Isa>(i), keys));

    std::printf("crypto throughput (GB/s)\n");
    std::printf("%-10s %10s %10s %8s %10s %9s %10s %9s %9s\n",
                "tier", "aes_blocks", "otp_pads", "sip_x4",
                "sip_scalar", "mac_batch", "mac_scalar", "eng_write",
                "eng_read");
    for (const TierResult &r : tiers)
        std::printf("%-10s %10.3f %10.3f %8.3f %10.3f %9.3f %10.3f "
                    "%9.3f %9.3f\n",
                    crypto::isaName(r.isa), r.aes_blocks, r.otp_pads,
                    r.sip_x4, r.sip_scalar, r.mac_batch, r.mac_scalar,
                    r.engine_write, r.engine_read);

    const TierResult &base = tiers.front();
    const TierResult &top = tiers.back();
    const double aes_speedup = top.aes_blocks / base.aes_blocks;
    const double otp_speedup = top.otp_pads / base.otp_pads;
    const double sip_speedup = top.sip_x4 / base.sip_scalar;
    const double mac_speedup = top.mac_batch / base.mac_scalar;
    std::printf("speedup %s vs portable-scalar: aes %.2fx otp %.2fx "
                "sip_x4 %.2fx mac_batch %.2fx\n",
                crypto::isaName(top.isa), aes_speedup, otp_speedup,
                sip_speedup, mac_speedup);

    obs::Manifest m("crypto_throughput");
    m.set("best_isa", crypto::isaName(best));
    m.set("tiers", static_cast<std::uint64_t>(tiers.size()));
    for (const TierResult &r : tiers)
        addTier(m, r);
    m.set("speedup.aes_blocks", aes_speedup);
    m.set("speedup.otp_pads", otp_speedup);
    m.set("speedup.sip_x4_vs_scalar", sip_speedup);
    m.set("speedup.mac_batch_vs_scalar", mac_speedup);
    obs::ManifestReporter::finalize(m);

    // CI gate: on hardware with a SIMD tier the batched AES data
    // plane must beat portable-scalar by 3x, and the batched/lane
    // SipHash paths must not regress below their scalar baselines.
    if (config().enforce_crypto && best != crypto::Isa::Portable) {
        bool ok = true;
        if (aes_speedup < 3.0) {
            std::fprintf(stderr,
                         "FAIL: aes_blocks speedup %.2fx < 3x\n",
                         aes_speedup);
            ok = false;
        }
        if (otp_speedup < 3.0) {
            std::fprintf(stderr,
                         "FAIL: otp_pads speedup %.2fx < 3x\n",
                         otp_speedup);
            ok = false;
        }
        if (sip_speedup < 1.0) {
            std::fprintf(stderr,
                         "FAIL: sip_x4 below scalar (%.2fx)\n",
                         sip_speedup);
            ok = false;
        }
        if (mac_speedup < 1.0) {
            std::fprintf(stderr,
                         "FAIL: mac_batch below scalar (%.2fx)\n",
                         mac_speedup);
            ok = false;
        }
        if (!ok)
            return 1;
    }
    return 0;
}
