/**
 * @file
 * Extra comparison: tree-less version-number protection (TNPU / MGX
 * class, Table 1) versus the unified multi-granular engine.
 *
 * The paper argues (Sec. 2.3/3.3) that tree-less schemes are
 * excellent inside their domain -- an NPU with a bounded set of large
 * tensors -- but "neither general nor scalable": general working
 * sets blow through the bounded on-chip version table, and every
 * spill re-encrypts a whole region.  This bench stages exactly that
 * contrast: a pure-NPU system (their home turf) against the
 * heterogeneous mix (the paper's target).
 */

#include <array>
#include <cstdio>
#include <memory>

#include "baselines/mgx_engine.hh"
#include "baselines/secddr_engine.hh"
#include "baselines/treeless_engine.hh"
#include "bench/bench_util.hh"
#include "devices/cpu_model.hh"
#include "devices/gpu_model.hh"
#include "devices/npu_model.hh"
#include "hetero/hetero_system.hh"
#include "workloads/registry.hh"

using namespace mgmee;

namespace {

std::vector<Device>
npuOnly(std::uint64_t seed, double scale)
{
    std::vector<Device> devices;
    const char *wl[4] = {"alex", "sfrnn", "alex", "dlrm"};
    for (unsigned d = 0; d < 4; ++d) {
        devices.push_back(makeNpuDevice(wl[d], d, d * kDeviceStride,
                                        seed * 4 + d, scale));
    }
    return devices;
}

std::vector<Device>
hetero(std::uint64_t seed, double scale)
{
    std::vector<Device> devices;
    devices.push_back(
        makeCpuDevice("mcf", 0, 0 * kDeviceStride, seed * 4, scale));
    devices.push_back(makeGpuDevice("sten", 1, 1 * kDeviceStride,
                                    seed * 4 + 1, scale));
    devices.push_back(makeNpuDevice("alex", 2, 2 * kDeviceStride,
                                    seed * 4 + 2, scale));
    devices.push_back(makeNpuDevice("dlrm", 3, 3 * kDeviceStride,
                                    seed * 4 + 3, scale));
    return devices;
}

struct Row
{
    double norm;
    std::uint64_t evictions;
};

template <typename MakeDevices>
Row
runWith(MakeDevices make, std::unique_ptr<TimingEngine> engine,
        const std::vector<Cycle> &unsec)
{
    HeteroSystem sys(make(), std::move(engine));
    sys.run();
    const auto finish = sys.deviceFinishTimes();
    double sum = 0;
    for (std::size_t d = 0; d < finish.size(); ++d)
        sum += static_cast<double>(finish[d]) /
               static_cast<double>(unsec[d]);
    return {sum / static_cast<double>(finish.size()),
            sys.engine().stats().get("version_evictions")};
}

template <typename MakeDevices>
void
compare(const char *label, MakeDevices make,
        const std::array<const char *, 4> &workloads)
{
    TimingConfig timing;
    timing.parallel_walk = true;

    // Both "ML-specific" engines derive their coverage from the
    // workload profiles: a device is software-managed exactly when
    // its registry profile is (NPU-kind tensor programs).
    std::array<bool, 8> managed{};
    std::array<MgxSchedule, 8> schedules{};
    for (unsigned d = 0; d < 4; ++d) {
        schedules[d] = mgxScheduleFor(findWorkload(workloads[d]));
        managed[d] = schedules[d].software_managed;
    }

    HeteroSystem unsec_sys(make(),
                           makeEngine(Scheme::Unsecure,
                                      scenarioDataBytes()));
    unsec_sys.run();
    const auto unsec = unsec_sys.deviceFinishTimes();

    const Row conv = runWith(
        make, makeEngine(Scheme::Conventional, scenarioDataBytes()),
        unsec);
    const Row treeless = runWith(
        make,
        std::make_unique<TreelessEngine>(scenarioDataBytes(), timing,
                                         managed, 512),
        unsec);
    const Row mgx = runWith(
        make,
        std::make_unique<MgxEngine>(scenarioDataBytes(), timing,
                                    schedules),
        unsec);
    const Row secddr = runWith(
        make,
        std::make_unique<SecDdrEngine>(scenarioDataBytes(), timing),
        unsec);
    const Row ours = runWith(
        make, makeEngine(Scheme::Ours, scenarioDataBytes()), unsec);

    std::printf("%-10s %13.3fx %13.3fx %9.3fx %9.3fx %9.3fx %16llu\n",
                label, conv.norm, treeless.norm, mgx.norm,
                secddr.norm, ours.norm,
                static_cast<unsigned long long>(treeless.evictions));
}

} // namespace

int
main()
{
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();

    std::printf("=== Extra: ML-specific and interface-only schemes "
                "vs unified multi-granularity ===\n");
    std::printf("%-10s %14s %14s %10s %10s %10s %16s\n", "system",
                "Conventional", "Treeless", "MGX", "SecDDR", "Ours",
                "table evictions");
    // NPU-only: every device is software-managed (home domain of the
    // treeless/MGX class; the registry profiles say so).
    compare("NPU-only", [&] { return npuOnly(seed, scale); },
            {"alex", "sfrnn", "alex", "dlrm"});
    // Heterogeneous: only the two NPU slots have compiler-managed
    // versions; CPU and GPU traffic has no tree-less story.
    compare("hetero", [&] { return hetero(seed, scale); },
            {"mcf", "sten", "alex", "dlrm"});

    std::printf(
        "\n(Tree-less versions win on their home turf -- software-"
        "managed NPU tensors make the\ncounter side free -- and MGX "
        "removes even the version-table eviction cliff by\nderiving "
        "versions from the program schedule.  But neither has an "
        "answer for CPU/GPU\ntraffic, which stays at conventional "
        "cost.  SecDDR is flat and cheap everywhere --\nby giving up "
        "freshness: replay at rest goes undetected (see the fault "
        "campaign's\nsecddr-interface row).  The unified multi-"
        "granular engine helps every device with\nfull guarantees, "
        "so it wins the heterogeneous mix: the paper's Sec. 2.3 "
        "'cannot be\napplied to general applications' argument, made "
        "executable.)\n");
    return 0;
}
