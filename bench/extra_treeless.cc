/**
 * @file
 * Extra comparison: tree-less version-number protection (TNPU / MGX
 * class, Table 1) versus the unified multi-granular engine.
 *
 * The paper argues (Sec. 2.3/3.3) that tree-less schemes are
 * excellent inside their domain -- an NPU with a bounded set of large
 * tensors -- but "neither general nor scalable": general working
 * sets blow through the bounded on-chip version table, and every
 * spill re-encrypts a whole region.  This bench stages exactly that
 * contrast: a pure-NPU system (their home turf) against the
 * heterogeneous mix (the paper's target).
 */

#include <array>
#include <cstdio>
#include <memory>

#include "baselines/treeless_engine.hh"
#include "bench/bench_util.hh"
#include "devices/cpu_model.hh"
#include "devices/gpu_model.hh"
#include "devices/npu_model.hh"
#include "hetero/hetero_system.hh"

using namespace mgmee;

namespace {

std::vector<Device>
npuOnly(std::uint64_t seed, double scale)
{
    std::vector<Device> devices;
    const char *wl[4] = {"alex", "sfrnn", "alex", "dlrm"};
    for (unsigned d = 0; d < 4; ++d) {
        devices.push_back(makeNpuDevice(wl[d], d, d * kDeviceStride,
                                        seed * 4 + d, scale));
    }
    return devices;
}

std::vector<Device>
hetero(std::uint64_t seed, double scale)
{
    std::vector<Device> devices;
    devices.push_back(
        makeCpuDevice("mcf", 0, 0 * kDeviceStride, seed * 4, scale));
    devices.push_back(makeGpuDevice("sten", 1, 1 * kDeviceStride,
                                    seed * 4 + 1, scale));
    devices.push_back(makeNpuDevice("alex", 2, 2 * kDeviceStride,
                                    seed * 4 + 2, scale));
    devices.push_back(makeNpuDevice("dlrm", 3, 3 * kDeviceStride,
                                    seed * 4 + 3, scale));
    return devices;
}

struct Row
{
    double norm;
    std::uint64_t evictions;
};

template <typename MakeDevices>
Row
runWith(MakeDevices make, std::unique_ptr<TimingEngine> engine,
        const std::vector<Cycle> &unsec)
{
    HeteroSystem sys(make(), std::move(engine));
    sys.run();
    const auto finish = sys.deviceFinishTimes();
    double sum = 0;
    for (std::size_t d = 0; d < finish.size(); ++d)
        sum += static_cast<double>(finish[d]) /
               static_cast<double>(unsec[d]);
    return {sum / static_cast<double>(finish.size()),
            sys.engine().stats().get("version_evictions")};
}

template <typename MakeDevices>
void
compare(const char *label, MakeDevices make,
        std::array<bool, 8> managed)
{
    TimingConfig timing;
    timing.parallel_walk = true;

    HeteroSystem unsec_sys(make(),
                           makeEngine(Scheme::Unsecure,
                                      scenarioDataBytes()));
    unsec_sys.run();
    const auto unsec = unsec_sys.deviceFinishTimes();

    const Row conv = runWith(
        make, makeEngine(Scheme::Conventional, scenarioDataBytes()),
        unsec);
    const Row treeless = runWith(
        make,
        std::make_unique<TreelessEngine>(scenarioDataBytes(), timing,
                                         managed, 512),
        unsec);
    const Row ours = runWith(
        make, makeEngine(Scheme::Ours, scenarioDataBytes()), unsec);

    std::printf("%-10s %13.3fx %13.3fx %9.3fx %16llu\n", label,
                conv.norm, treeless.norm, ours.norm,
                static_cast<unsigned long long>(treeless.evictions));
}

} // namespace

int
main()
{
    const double scale = bench::envScale();
    const std::uint64_t seed = bench::envSeed();

    std::printf("=== Extra: tree-less version numbers vs unified "
                "multi-granularity ===\n");
    std::printf("%-10s %14s %14s %10s %16s\n", "system",
                "Conventional", "Treeless", "Ours",
                "table evictions");
    // NPU-only: every device is software-managed (home domain).
    compare("NPU-only", [&] { return npuOnly(seed, scale); },
            {true, true, true, true});
    // Heterogeneous: only the two NPU slots have compiler-managed
    // versions; CPU and GPU traffic has no tree-less story.
    compare("hetero", [&] { return hetero(seed, scale); },
            {false, false, true, true});

    std::printf(
        "\n(Tree-less versions win on their home turf -- software-"
        "managed NPU tensors make the\ncounter side free -- but they "
        "have no answer for CPU/GPU traffic, which stays at\n"
        "conventional cost.  The unified multi-granular engine helps "
        "every device, so it wins\nthe heterogeneous mix: the "
        "paper's Sec. 2.3 'cannot be applied to general\n"
        "applications' argument, made executable.)\n");
    return 0;
}
