/**
 * @file
 * mgmee-trace-stats: analyse a trace file with the paper's Sec. 3.1
 * stream-chunk classifier (workload traces, mgmee-trace v1) or decode
 * a binary security-event trace (obs format, magic "MGOBSTR1").
 *
 *   mgmee-trace-stats [--jsonl <out>] <trace-file>...
 *
 * The format is auto-detected per file.  For workload traces it
 * prints request/line/write counts, issue span, request size
 * histogram, and the 64B/512B/4KB/32KB stream-chunk composition.
 * For security-event traces it prints per-kind event counts,
 * read-walk depth statistics, per-level metadata-cache hit rates,
 * MAC staging-buffer flush counts and mean occupancy,
 * per-table memo hit rates, and the per-class stream-chunk line
 * totals (which must match the emitting bench's manifest totals).
 * `--jsonl <out>` additionally exports an event trace as JSON-lines.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/stats.hh"
#include "crypto/batch.hh"
#include "fault/injector.hh"
#include "obs/trace.hh"
#include "workloads/trace_io.hh"

using namespace mgmee;

namespace {

/** True when @p path starts with the obs event-trace magic. */
bool
isObsTrace(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return false;
    char magic[8] = {};
    const std::size_t got = std::fread(magic, 1, sizeof(magic), f);
    std::fclose(f);
    return got == sizeof(magic) &&
           std::memcmp(magic, "MGOBSTR1", sizeof(magic)) == 0;
}

void
analyseObs(const char *path, const std::string &jsonl_out)
{
    const std::vector<obs::TraceRecord> recs =
        obs::readTraceFile(path);

    std::uint64_t by_kind[256] = {};
    Histogram walk_depth;
    std::uint64_t level_hits[32] = {}, level_total[32] = {};
    std::uint64_t memo_hits[3] = {}, memo_misses[3] = {};
    std::uint64_t chunk_lines[4] = {}, chunk_events[4] = {};
    std::uint64_t fault_inject[fault::kAttackClasses] = {};
    std::uint64_t fault_verdicts[fault::kAttackClasses][5] = {};
    std::uint64_t inject_tick[fault::kAttackClasses] = {};
    bool inject_seen[fault::kAttackClasses] = {};
    Histogram fault_latency[fault::kAttackClasses];
    std::uint64_t batch_flushes = 0, batch_macs = 0;
    std::uint64_t dropped = 0, dropped_threads = 0;
    for (const obs::TraceRecord &r : recs) {
        ++by_kind[r.kind];
        switch (static_cast<obs::EventKind>(r.kind)) {
          case obs::EventKind::WalkRead:
            walk_depth.record(r.arg0);
            break;
          case obs::EventKind::WalkLevel:
            if (r.arg0 < 32) {
                ++level_total[r.arg0];
                level_hits[r.arg0] += r.value & 1;
            }
            break;
          case obs::EventKind::MemoHit:
            if (r.arg0 < 3)
                ++memo_hits[r.arg0];
            break;
          case obs::EventKind::MemoMiss:
            if (r.arg0 < 3)
                ++memo_misses[r.arg0];
            break;
          case obs::EventKind::StreamChunk:
            if (r.arg0 < 4) {
                chunk_lines[r.arg0] += r.value;
                ++chunk_events[r.arg0];
            }
            break;
          case obs::EventKind::MacBatchFlush:
            ++batch_flushes;
            batch_macs += r.value;
            break;
          case obs::EventKind::FaultInject:
            if (r.arg0 < fault::kAttackClasses) {
                ++fault_inject[r.arg0];
                // cycle carries the injector's deterministic tick
                // clock; remembered for the verdict's latency.
                inject_tick[r.arg0] = r.cycle;
                inject_seen[r.arg0] = true;
            }
            break;
          case obs::EventKind::FaultVerdict:
            if (r.arg0 < fault::kAttackClasses && r.value < 5) {
                ++fault_verdicts[r.arg0][r.value];
                if (inject_seen[r.arg0] &&
                    r.cycle >= inject_tick[r.arg0]) {
                    fault_latency[r.arg0].record(
                        r.cycle - inject_tick[r.arg0]);
                    inject_seen[r.arg0] = false;
                }
            }
            break;
          case obs::EventKind::TraceDropped:
            // Per-thread drop trailer: addr = records lost.
            dropped += r.addr;
            ++dropped_threads;
            break;
          default:
            break;
        }
    }

    std::printf("%s (security-event trace, %zu records)\n", path,
                recs.size());
    for (unsigned k = 0; k < 256; ++k) {
        if (by_kind[k]) {
            std::printf("  %-14s %12llu\n",
                        obs::eventKindName(
                            static_cast<obs::EventKind>(k)),
                        static_cast<unsigned long long>(by_kind[k]));
        }
    }
    if (walk_depth.count())
        std::printf("  read-walk depth: %s\n",
                    walk_depth.summary().c_str());
    for (unsigned lvl = 0; lvl < 32; ++lvl) {
        if (level_total[lvl]) {
            std::printf("  level %2u: %llu touches, %.1f%% cached\n",
                        lvl,
                        static_cast<unsigned long long>(
                            level_total[lvl]),
                        100.0 * static_cast<double>(level_hits[lvl]) /
                            static_cast<double>(level_total[lvl]));
        }
    }
    static const char *kTables[3] = {"run", "search", "trace_repo"};
    for (unsigned t = 0; t < 3; ++t) {
        if (memo_hits[t] + memo_misses[t]) {
            std::printf("  memo[%s]: %llu hits / %llu misses\n",
                        kTables[t],
                        static_cast<unsigned long long>(memo_hits[t]),
                        static_cast<unsigned long long>(
                            memo_misses[t]));
        }
    }
    static const char *kClasses[4] = {"64B", "512B", "4KB", "32KB"};
    for (unsigned c = 0; c < 4; ++c) {
        if (chunk_events[c]) {
            std::printf("  stream-chunk %-4s: %llu lines in %llu "
                        "windows\n",
                        kClasses[c],
                        static_cast<unsigned long long>(
                            chunk_lines[c]),
                        static_cast<unsigned long long>(
                            chunk_events[c]));
        }
    }
    if (batch_flushes) {
        std::printf("  MAC staging buffer: %llu MACs in %llu flushes "
                    "(mean occupancy %.1f of %zu)\n",
                    static_cast<unsigned long long>(batch_macs),
                    static_cast<unsigned long long>(batch_flushes),
                    static_cast<double>(batch_macs) /
                        static_cast<double>(batch_flushes),
                    crypto::MacBatch::kCapacity);
    }
    for (unsigned c = 0; c < fault::kAttackClasses; ++c) {
        std::uint64_t cells = 0;
        for (unsigned v = 0; v < 5; ++v)
            cells += fault_verdicts[c][v];
        if (!fault_inject[c] && !cells)
            continue;
        const auto cls = static_cast<fault::AttackClass>(c);
        std::printf("  fault[%-12s]: %llu injections;",
                    fault::attackClassName(cls),
                    static_cast<unsigned long long>(fault_inject[c]));
        for (unsigned v = 0; v < 5; ++v) {
            if (fault_verdicts[c][v]) {
                std::printf(" %llu %s",
                            static_cast<unsigned long long>(
                                fault_verdicts[c][v]),
                            fault::verdictName(
                                static_cast<fault::Verdict>(v)));
            }
        }
        if (fault_latency[c].count())
            std::printf("; detect latency %s ticks",
                        fault_latency[c].summary().c_str());
        std::printf("\n");
    }
    if (dropped) {
        std::printf("  DROPPED: %llu record(s) lost across %llu "
                    "thread buffer(s) -- counts above undercount\n",
                    static_cast<unsigned long long>(dropped),
                    static_cast<unsigned long long>(dropped_threads));
    } else {
        std::printf("  dropped records: none\n");
    }
    std::printf("\n");

    if (!jsonl_out.empty()) {
        const long n = obs::exportJsonl(path, jsonl_out);
        if (n < 0)
            std::fprintf(stderr, "could not write %s\n",
                         jsonl_out.c_str());
        else
            std::printf("exported %ld records to %s\n", n,
                        jsonl_out.c_str());
    }
}

void
analyse(const char *path)
{
    const Trace trace = loadTrace(path);
    const TraceProfile p = profileTrace(trace);

    Histogram req_bytes;
    Histogram gaps;
    Addr lo = ~Addr{0}, hi = 0;
    for (const TraceOp &op : trace) {
        req_bytes.record(op.bytes);
        gaps.record(op.gap);
        lo = std::min(lo, op.addr);
        hi = std::max(hi, op.addr + op.bytes);
    }

    const double total = static_cast<double>(
        p.lines64 + p.lines512 + p.lines4k + p.lines32k);

    std::printf("%s\n", path);
    std::printf("  requests %llu  lines %llu  writes %.1f%%  span "
                "%llu cycles\n",
                static_cast<unsigned long long>(p.requests),
                static_cast<unsigned long long>(p.lines),
                p.requests ? 100.0 * static_cast<double>(p.writes) /
                                 static_cast<double>(p.requests)
                           : 0.0,
                static_cast<unsigned long long>(p.span));
    std::printf("  footprint [0x%llx, 0x%llx) = %.2f MB touched "
                "window\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<double>(hi - lo) / (1 << 20));
    std::printf("  request bytes: %s\n", req_bytes.summary().c_str());
    std::printf("  issue gaps:    %s\n", gaps.summary().c_str());
    if (total > 0) {
        std::printf("  stream-chunk mix: 64B %.1f%%  512B %.1f%%  "
                    "4KB %.1f%%  32KB %.1f%%\n",
                    100 * p.lines64 / total, 100 * p.lines512 / total,
                    100 * p.lines4k / total,
                    100 * p.lines32k / total);
    }
    const double intensity =
        p.span ? static_cast<double>(p.lines) * kCachelineBytes /
                     static_cast<double>(p.span)
               : 0.0;
    std::printf("  traffic intensity: %.2f bytes/cycle "
                "(%s per Table 4)\n\n",
                intensity,
                intensity > 4.0   ? "large 'l'"
                : intensity > 1.0 ? "medium 'm'"
                                  : "small 's'");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonl_out;
    int first = 1;
    if (argc >= 3 && std::strcmp(argv[1], "--jsonl") == 0) {
        jsonl_out = argv[2];
        first = 3;
    }
    if (first >= argc) {
        std::fprintf(stderr,
                     "usage: mgmee-trace-stats [--jsonl <out>] "
                     "<trace-file>...\n"
                     "(workload traces via mgmee-sim --dump-traces; "
                     "event traces via MGMEE_TRACE=<path>)\n");
        return 1;
    }
    for (int i = first; i < argc; ++i) {
        if (isObsTrace(argv[i]))
            analyseObs(argv[i], jsonl_out);
        else
            analyse(argv[i]);
    }
    return 0;
}
