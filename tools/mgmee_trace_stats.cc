/**
 * @file
 * mgmee-trace-stats: analyse a trace file (mgmee-trace v1) with the
 * paper's Sec. 3.1 stream-chunk classifier.
 *
 *   mgmee-trace-stats <trace-file>...
 *
 * Prints, per file: request/line/write counts, issue span, request
 * size histogram, and the 64B/512B/4KB/32KB stream-chunk composition
 * -- the properties that determine how every protection scheme will
 * treat the workload.  Useful when converting traces from other
 * simulators to check they landed in the intended regime.
 */

#include <cstdio>

#include "common/stats.hh"
#include "workloads/trace_io.hh"

using namespace mgmee;

namespace {

void
analyse(const char *path)
{
    const Trace trace = loadTrace(path);
    const TraceProfile p = profileTrace(trace);

    Histogram req_bytes;
    Histogram gaps;
    Addr lo = ~Addr{0}, hi = 0;
    for (const TraceOp &op : trace) {
        req_bytes.record(op.bytes);
        gaps.record(op.gap);
        lo = std::min(lo, op.addr);
        hi = std::max(hi, op.addr + op.bytes);
    }

    const double total = static_cast<double>(
        p.lines64 + p.lines512 + p.lines4k + p.lines32k);

    std::printf("%s\n", path);
    std::printf("  requests %llu  lines %llu  writes %.1f%%  span "
                "%llu cycles\n",
                static_cast<unsigned long long>(p.requests),
                static_cast<unsigned long long>(p.lines),
                p.requests ? 100.0 * static_cast<double>(p.writes) /
                                 static_cast<double>(p.requests)
                           : 0.0,
                static_cast<unsigned long long>(p.span));
    std::printf("  footprint [0x%llx, 0x%llx) = %.2f MB touched "
                "window\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<double>(hi - lo) / (1 << 20));
    std::printf("  request bytes: %s\n", req_bytes.summary().c_str());
    std::printf("  issue gaps:    %s\n", gaps.summary().c_str());
    if (total > 0) {
        std::printf("  stream-chunk mix: 64B %.1f%%  512B %.1f%%  "
                    "4KB %.1f%%  32KB %.1f%%\n",
                    100 * p.lines64 / total, 100 * p.lines512 / total,
                    100 * p.lines4k / total,
                    100 * p.lines32k / total);
    }
    const double intensity =
        p.span ? static_cast<double>(p.lines) * kCachelineBytes /
                     static_cast<double>(p.span)
               : 0.0;
    std::printf("  traffic intensity: %.2f bytes/cycle "
                "(%s per Table 4)\n\n",
                intensity,
                intensity > 4.0   ? "large 'l'"
                : intensity > 1.0 ? "medium 'm'"
                                  : "small 's'");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: mgmee-trace-stats <trace-file>...\n"
                     "(produce files with: mgmee-sim --dump-traces)\n");
        return 1;
    }
    for (int i = 1; i < argc; ++i)
        analyse(argv[i]);
    return 0;
}
