/**
 * @file
 * mgmee-loadgen: deterministic traffic driver for mgmee-serve.
 *
 * Spawns one thread per tenant, each pushing seeded batches from
 * serve::Loadgen over its own socket connection (or, with --inproc,
 * into an in-process serve::Server -- handy for sanity runs without
 * a daemon).  Prints a per-tenant line with request count, final
 * reply digest, sheds and faults seen, and exits nonzero when
 * --expect-no-shed or --expect-digest is violated, so CI can gate on
 * it directly.
 *
 *   mgmee-loadgen --socket /tmp/s.sock --tenants 4 --requests 65536
 *   mgmee-loadgen --inproc --tenants 4 --tamper 1000
 *   mgmee-loadgen --socket /tmp/s.sock --shutdown   # stop the daemon
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "serve/loadgen.hh"
#include "serve/net.hh"
#include "serve/server.hh"

using namespace mgmee;
namespace wire = mgmee::serve::wire;

namespace {

struct Options
{
    std::string socket;
    unsigned tenants = 0;           //!< 0 = config().serve_tenants
    std::uint64_t requests = 65536; //!< per tenant
    unsigned batch = 0;             //!< 0 = config().serve_batch
    std::uint64_t seed = 0;         //!< 0 = config().seed
    bool inproc = false;
    bool shutdown = false;          //!< send Shutdown when done
    bool expect_no_shed = false;
    std::size_t tamper_at = ~std::size_t{0};
};

struct TenantOutcome
{
    std::uint64_t digest = 0;
    std::uint64_t requests = 0;
    std::uint64_t sheds = 0;
    std::uint64_t faults = 0;
    std::uint64_t bad = 0;
    bool transport_ok = true;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: mgmee-loadgen [--socket PATH | --inproc]\n"
        "                     [--tenants N] [--requests N] [--batch N]\n"
        "                     [--seed N] [--tamper INDEX]\n"
        "                     [--expect-no-shed] [--shutdown]\n");
}

/** Drive one tenant to completion through @p submit. */
template <typename Submit>
TenantOutcome
driveTenant(const serve::LoadgenConfig &cfg, std::uint64_t requests,
            Submit &&submit)
{
    serve::Loadgen gen(cfg);
    wire::RequestBatch batch;
    wire::BatchReply reply;
    TenantOutcome out;
    while (gen.generated() < requests) {
        gen.next(batch);
        if (!submit(batch, reply)) {
            out.transport_ok = false;
            break;
        }
        gen.absorb(reply);
    }
    out.digest = gen.digest();
    out.requests = gen.generated();
    out.sheds = gen.shedBatches();
    out.faults = gen.faultsSeen();
    out.bad = gen.badSeen();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socket = value();
        } else if (arg == "--tenants") {
            opt.tenants = std::strtoul(value(), nullptr, 10);
        } else if (arg == "--requests") {
            opt.requests = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--batch") {
            opt.batch = std::strtoul(value(), nullptr, 10);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--tamper") {
            opt.tamper_at = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--inproc") {
            opt.inproc = true;
        } else if (arg == "--shutdown") {
            opt.shutdown = true;
        } else if (arg == "--expect-no-shed") {
            opt.expect_no_shed = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown flag %s", arg.c_str());
        }
    }

    const Config &cfg = config();
    if (opt.socket.empty())
        opt.socket = cfg.serve_socket;
    if (opt.tenants == 0)
        opt.tenants = cfg.serve_tenants;
    if (opt.batch == 0)
        opt.batch = cfg.serve_batch;
    if (opt.seed == 0)
        opt.seed = cfg.seed;
    if (opt.requests == 0 && cfg.serve_requests != 0)
        opt.requests = cfg.serve_requests;

    // The in-process fallback spins up a server matching the config,
    // so --inproc runs exercise the exact same path a daemon would.
    std::unique_ptr<serve::Server> local;
    if (opt.inproc)
        local = std::make_unique<serve::Server>(
            serve::SessionConfig::fromConfig(cfg));

    std::vector<TenantOutcome> outcomes(opt.tenants);
    std::vector<std::thread> threads;
    threads.reserve(opt.tenants);
    for (unsigned t = 0; t < opt.tenants; ++t) {
        threads.emplace_back([&, t] {
            serve::LoadgenConfig lg;
            lg.tenant = t;
            lg.seed = opt.seed;
            lg.mem_bytes = cfg.serve_mem_bytes;
            lg.batch = opt.batch;
            lg.tamper_at = opt.tamper_at;
            if (opt.inproc) {
                outcomes[t] = driveTenant(
                    lg, opt.requests,
                    [&](const wire::RequestBatch &b,
                        wire::BatchReply &r) {
                        r = local->submitSync(b);
                        return true;
                    });
            } else {
                serve::Client client(opt.socket);
                std::string err;
                outcomes[t] = driveTenant(
                    lg, opt.requests,
                    [&](const wire::RequestBatch &b,
                        wire::BatchReply &r) {
                        if (client.callBatch(b, r, err))
                            return true;
                        warn("tenant %u: %s", t, err.c_str());
                        return false;
                    });
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    bool ok = true;
    std::uint64_t total = 0, sheds = 0;
    for (unsigned t = 0; t < opt.tenants; ++t) {
        const TenantOutcome &o = outcomes[t];
        std::printf("tenant %u: requests=%llu digest=%016llx "
                    "sheds=%llu faults=%llu bad=%llu%s\n",
                    t, static_cast<unsigned long long>(o.requests),
                    static_cast<unsigned long long>(o.digest),
                    static_cast<unsigned long long>(o.sheds),
                    static_cast<unsigned long long>(o.faults),
                    static_cast<unsigned long long>(o.bad),
                    o.transport_ok ? "" : " [transport error]");
        total += o.requests;
        sheds += o.sheds;
        ok = ok && o.transport_ok;
    }
    std::printf("total: %llu requests, %llu shed batches\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(sheds));

    if (opt.expect_no_shed && sheds != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu batches shed (expected none)\n",
                     static_cast<unsigned long long>(sheds));
        ok = false;
    }

    if (opt.shutdown && !opt.inproc) {
        serve::Client client(opt.socket);
        wire::Frame reply;
        std::string err;
        if (!client.call(wire::FrameType::Shutdown, {}, reply, err) ||
            reply.type != wire::FrameType::ShutdownReply) {
            std::fprintf(stderr, "FAIL: shutdown not acknowledged\n");
            ok = false;
        }
    }
    if (local)
        local->stop();
    return ok ? 0 : 1;
}
