/**
 * @file
 * mgmee-perf-diff: the standing perf gate.  Compares a fresh run
 * manifest against a checked-in baseline (results/baselines/),
 * prints per-metric deltas, appends a BENCH_<bench>.json trajectory
 * entry, and exits nonzero when any hard regression is found.
 *
 *   mgmee-perf-diff --baseline <file> --current <file>
 *                   [--wall-tolerance <frac>]   (default 0.25)
 *                   [--counter-tolerance <frac>] (default 0, exact)
 *                   [--wall-warn-only]
 *                   [--ignore <metric-key>]...
 *                   [--bench-out <dir>]         (default results)
 *                   [--no-trajectory]
 *
 * Counter/ratio metrics (event counts, verdict strings, booleans)
 * are deterministic and fail hard on any drift beyond
 * --counter-tolerance.  Wall-clock metrics (_ns/seconds/speedup/...)
 * are compared directionally against --wall-tolerance and can be
 * downgraded to warnings with --wall-warn-only for shared CI
 * runners.  A metric the baseline names that is missing from the
 * current manifest always fails: baselines are the curated contract.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json.hh"
#include "obs/perf_diff.hh"

using namespace mgmee;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mgmee-perf-diff --baseline <file> --current <file>\n"
        "                       [--wall-tolerance <frac>]\n"
        "                       [--counter-tolerance <frac>]\n"
        "                       [--wall-warn-only]\n"
        "                       [--ignore <metric-key>]...\n"
        "                       [--bench-out <dir>] "
        "[--no-trajectory]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path, bench_out = "results";
    bool trajectory = true;
    obs::PerfDiffConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (std::strcmp(arg, "--baseline") == 0) {
            const char *v = next();
            if (!v)
                return usage();
            baseline_path = v;
        } else if (std::strcmp(arg, "--current") == 0) {
            const char *v = next();
            if (!v)
                return usage();
            current_path = v;
        } else if (std::strcmp(arg, "--wall-tolerance") == 0) {
            const char *v = next();
            if (!v)
                return usage();
            cfg.wall_tolerance = std::atof(v);
        } else if (std::strcmp(arg, "--counter-tolerance") == 0) {
            const char *v = next();
            if (!v)
                return usage();
            cfg.counter_tolerance = std::atof(v);
        } else if (std::strcmp(arg, "--wall-warn-only") == 0) {
            cfg.wall_warn_only = true;
        } else if (std::strcmp(arg, "--ignore") == 0) {
            const char *v = next();
            if (!v)
                return usage();
            cfg.ignore.push_back(v);
        } else if (std::strcmp(arg, "--bench-out") == 0) {
            const char *v = next();
            if (!v)
                return usage();
            bench_out = v;
        } else if (std::strcmp(arg, "--no-trajectory") == 0) {
            trajectory = false;
        } else {
            return usage();
        }
    }
    if (baseline_path.empty() || current_path.empty())
        return usage();

    obs::JsonValue baseline, current;
    std::string error;
    if (!obs::parseJsonFile(baseline_path, baseline, error)) {
        std::fprintf(stderr, "mgmee-perf-diff: %s\n", error.c_str());
        return 2;
    }
    if (!obs::parseJsonFile(current_path, current, error)) {
        std::fprintf(stderr, "mgmee-perf-diff: %s\n", error.c_str());
        return 2;
    }

    const obs::PerfDiffReport report =
        obs::diffManifests(baseline, current, cfg);
    std::fputs(report.text().c_str(), stdout);

    if (trajectory) {
        const std::string path =
            obs::appendTrajectory(bench_out, current, report);
        if (path.empty())
            std::fprintf(stderr,
                         "mgmee-perf-diff: could not write "
                         "trajectory under %s\n",
                         bench_out.c_str());
        else
            std::printf("trajectory: %s\n", path.c_str());
    }

    return report.regressions > 0 ? 1 : 0;
}
