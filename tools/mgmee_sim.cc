/**
 * @file
 * mgmee-sim: command-line driver for the heterogeneous secure-memory
 * simulator.
 *
 *   mgmee-sim --list                          enumerate workloads,
 *                                             scenarios, schemes
 *   mgmee-sim --scenario cc1 --scheme ours    run one combination
 *   mgmee-sim --scenario xal+mm+alex+dlrm \
 *             --scheme all --scale 2 --csv    full comparison as CSV
 *   mgmee-sim --scenario c1 --scheme ours --stats
 *                                             include engine counters
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/multigran_engine.hh"
#include "fault/campaign.hh"
#include "obs/manifest.hh"
#include "hetero/hetero_system.hh"
#include "hetero/metrics.hh"
#include "workloads/registry.hh"
#include "workloads/trace_io.hh"

using namespace mgmee;

namespace {

struct Options
{
    std::string scenario = "cc1";
    std::string scheme = "ours";
    double scale = 1.0;
    std::uint64_t seed = 1;
    bool list = false;
    bool attack_campaign = false;
    bool csv = false;
    bool stats = false;
    bool map = false;
    /** Directory to dump the scenario's four traces into. */
    std::string dump_traces;
    /** External trace files replacing the synthetic devices. */
    std::string trace_files[4];
};

const std::vector<std::pair<std::string, Scheme>> kSchemeNames = {
    {"unsecure", Scheme::Unsecure},
    {"conventional", Scheme::Conventional},
    {"adaptive", Scheme::Adaptive},
    {"commonctr", Scheme::CommonCTR},
    {"static", Scheme::StaticDeviceBest},
    {"multictr", Scheme::MultiCtrOnly},
    {"ours", Scheme::Ours},
    {"bmf", Scheme::BmfUnused},
    {"bmf+ours", Scheme::BmfUnusedOurs},
};

void
usage()
{
    std::printf(
        "usage: mgmee-sim [options]\n"
        "  --scenario <id>   ff1..cc3, finance, autodrive, or "
        "cpu+gpu+npu+npu\n"
        "  --scheme <name>   unsecure|conventional|adaptive|"
        "commonctr|static|\n"
        "                    multictr|ours|bmf|bmf+ours|all\n"
        "  --scale <f>       trace-length multiplier (default 1.0)\n"
        "  --seed <n>        trace RNG seed (default 1)\n"
        "  --csv             machine-readable output\n"
        "  --stats           dump engine statistic counters\n"
        "  --map             print the final granularity map (multi-\n"
        "                    granular schemes only)\n"
        "  --list            list workloads, scenarios, schemes\n"
        "  --attack-campaign run the fault-injection campaign\n"
        "                    (attack class x granularity x engine)\n"
        "                    and write its coverage manifest\n"
        "  --dump-traces <dir>\n"
        "                    write the scenario's per-device traces\n"
        "                    as mgmee-trace v1 text files and exit\n"
        "  --trace-cpu/--trace-gpu/--trace-npu1/--trace-npu2 <file>\n"
        "                    replay external traces instead of the\n"
        "                    synthetic device models\n"
        "environment:\n"
        "  MGMEE_TELEMETRY=<ms>   stream interval stat snapshots to\n"
        "                         a JSONL timeline (obs/telemetry)\n"
        "  MGMEE_TELEMETRY_PATH   timeline path (default\n"
        "                         results/telemetry.jsonl)\n"
        "  MGMEE_HUD=1            live terminal HUD on stderr\n"
        "                         (current cell, events/sec, quantum\n"
        "                         wall p50/p99, crypto GB/s)\n");
}

Scenario
parseScenario(const std::string &arg)
{
    for (const Scenario &s : selectedScenarios())
        if (s.id == arg)
            return s;
    if (arg == "finance")
        return financeScenario();
    if (arg == "autodrive")
        return autodriveScenario();
    for (const Scenario &s : allScenarios())
        if (s.id == arg)
            return s;

    std::vector<std::string> parts;
    std::string rest = arg;
    std::size_t pos;
    while ((pos = rest.find('+')) != std::string::npos) {
        parts.push_back(rest.substr(0, pos));
        rest.erase(0, pos + 1);
    }
    parts.push_back(rest);
    fatal_if(parts.size() != 4, "unknown scenario '%s'", arg.c_str());
    return {arg, parts[0], parts[1], parts[2], parts[3]};
}

void
listEverything()
{
    std::printf("workloads:\n");
    for (const WorkloadSpec &w : allWorkloads()) {
        std::printf("  %-6s %-4s  64B/512B/4KB/32KB mix "
                    "%.2f/%.2f/%.2f/%.2f\n",
                    w.name.c_str(), deviceKindName(w.kind), w.r64,
                    w.r512, w.r4k, w.r32k);
    }
    std::printf("\nselected scenarios:\n");
    for (const Scenario &s : selectedScenarios()) {
        std::printf("  %-4s = %s + %s + %s + %s\n", s.id.c_str(),
                    s.cpu.c_str(), s.gpu.c_str(), s.npu1.c_str(),
                    s.npu2.c_str());
    }
    std::printf("  (plus %zu full cross-product scenarios, finance, "
                "autodrive)\n",
                allScenarios().size());
    std::printf("\nschemes:\n");
    for (const auto &[name, scheme] : kSchemeNames)
        std::printf("  %-12s %s\n", name.c_str(), schemeName(scheme));
}

/** Scenario devices, with external trace files spliced in. */
std::vector<Device>
makeDevices(const Scenario &scenario, const Options &opt)
{
    std::vector<Device> devices =
        buildDevices(scenario, opt.seed, opt.scale);
    static const DeviceKind kKinds[4] = {
        DeviceKind::CPU, DeviceKind::GPU, DeviceKind::NPU,
        DeviceKind::NPU};
    static const unsigned kWindows[4] = {2, 48, 16, 16};
    for (unsigned d = 0; d < 4; ++d) {
        if (opt.trace_files[d].empty())
            continue;
        devices[d] = Device("ext:" + opt.trace_files[d], kKinds[d],
                            d, loadTrace(opt.trace_files[d]),
                            kWindows[d]);
    }
    return devices;
}

void
runOne(const Scenario &scenario, Scheme scheme, const Options &opt,
       const RunResult &unsec,
       const std::array<Granularity, 8> &static_gran)
{
    HeteroSystem sys(makeDevices(scenario, opt),
                     makeEngine(scheme, scenarioDataBytes(),
                                static_gran));
    sys.run();

    RunResult r;
    r.device_finish = sys.deviceFinishTimes();
    r.total_bytes = sys.mem().totalBytes();
    r.security_misses = sys.engine().securityCacheMisses();

    if (opt.csv) {
        std::printf("%s,%s,%.6f,%.6f,%llu\n", scenario.id.c_str(),
                    schemeName(scheme),
                    normalizedExecTime(r, unsec),
                    static_cast<double>(r.total_bytes) /
                        unsec.total_bytes,
                    static_cast<unsigned long long>(
                        r.security_misses));
    } else {
        std::printf("%-20s exec %.3fx  traffic %.3fx  misses %llu\n",
                    schemeName(scheme),
                    normalizedExecTime(r, unsec),
                    static_cast<double>(r.total_bytes) /
                        unsec.total_bytes,
                    static_cast<unsigned long long>(
                        r.security_misses));
    }
    if (opt.stats)
        std::printf("%s", sys.engine().stats().dump().c_str());
    if (opt.map) {
        const auto *mg = dynamic_cast<const MultiGranEngine *>(
            &sys.engine());
        if (!mg) {
            std::printf("(no granularity map: %s is not a "
                        "multi-granular engine)\n",
                        sys.engine().name());
            return;
        }
        // Summarise the detected configuration per device window.
        std::printf("granularity map (chunks at each class, per "
                    "device window):\n");
        for (unsigned d = 0; d < 4; ++d) {
            std::uint64_t counts[4] = {0, 0, 0, 0};
            const std::uint64_t first =
                d * kDeviceStride / kChunkBytes;
            const std::uint64_t last =
                (d + 1) * kDeviceStride / kChunkBytes;
            for (std::uint64_t c = first; c < last; ++c) {
                const StreamPart sp = mg->table().current(c);
                if (sp == kAllFine) {
                    ++counts[0];
                    continue;
                }
                // Classify by the coarsest unit present.
                Granularity coarsest = Granularity::Line64B;
                for (unsigned p = 0; p < kPartitionsPerChunk; ++p) {
                    coarsest = std::max(
                        coarsest, granularityOfPartition(sp, p));
                }
                ++counts[static_cast<unsigned>(coarsest)];
            }
            std::printf("  device %u: 64B-only %llu, <=512B %llu, "
                        "<=4KB %llu, 32KB %llu\n",
                        d,
                        static_cast<unsigned long long>(counts[0]),
                        static_cast<unsigned long long>(counts[1]),
                        static_cast<unsigned long long>(counts[2]),
                        static_cast<unsigned long long>(counts[3]));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--scenario") {
            opt.scenario = next();
        } else if (arg == "--scheme") {
            opt.scheme = next();
        } else if (arg == "--scale") {
            opt.scale = std::atof(next());
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--map") {
            opt.map = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--attack-campaign") {
            opt.attack_campaign = true;
        } else if (arg == "--dump-traces") {
            opt.dump_traces = next();
        } else if (arg == "--trace-cpu") {
            opt.trace_files[0] = next();
        } else if (arg == "--trace-gpu") {
            opt.trace_files[1] = next();
        } else if (arg == "--trace-npu1") {
            opt.trace_files[2] = next();
        } else if (arg == "--trace-npu2") {
            opt.trace_files[3] = next();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    if (opt.list) {
        listEverything();
        return 0;
    }

    if (opt.attack_campaign) {
        fault::CampaignConfig cfg;
        cfg.seed = opt.seed;
        const fault::CampaignReport report =
            fault::runCampaign(cfg);
        std::printf("%s", report.matrixText().c_str());
        obs::Manifest manifest("attack_campaign");
        report.fillManifest(manifest);
        obs::ManifestReporter::finalize(manifest);
        return report.coreEnginesFullyDetect() ? 0 : 1;
    }

    const Scenario scenario = parseScenario(opt.scenario);

    if (!opt.dump_traces.empty()) {
        const auto devices =
            buildDevices(scenario, opt.seed, opt.scale);
        const char *slot[4] = {"cpu", "gpu", "npu1", "npu2"};
        const std::string names[4] = {scenario.cpu, scenario.gpu,
                                      scenario.npu1, scenario.npu2};
        for (unsigned d = 0; d < 4; ++d) {
            const std::string path = opt.dump_traces + "/" +
                                     scenario.id + "." + slot[d] +
                                     "." + names[d] + ".trace";
            saveTrace(path, generateTrace(findWorkload(names[d]),
                                          d * kDeviceStride,
                                          opt.seed * 4 + d,
                                          opt.scale));
            std::printf("wrote %s\n", path.c_str());
        }
        return 0;
    }

    // For the unsecured baseline, honour external traces too.
    RunResult unsec;
    {
        HeteroSystem sys(makeDevices(scenario, opt),
                         makeEngine(Scheme::Unsecure,
                                    scenarioDataBytes()));
        sys.run();
        unsec.device_finish = sys.deviceFinishTimes();
        unsec.total_bytes = sys.mem().totalBytes();
    }

    std::array<Granularity, 8> static_gran{};
    const bool wants_static = opt.scheme == "static" ||
                              opt.scheme == "all";
    if (wants_static)
        static_gran = searchStaticBest(scenario, opt.seed, opt.scale);

    if (opt.csv)
        std::printf("scenario,scheme,norm_exec,norm_traffic,"
                    "sec_misses\n");
    else
        std::printf("scenario %s (seed %llu, scale %.2f)\n",
                    scenario.id.c_str(),
                    static_cast<unsigned long long>(opt.seed),
                    opt.scale);

    if (opt.scheme == "all") {
        for (const auto &[name, scheme] : kSchemeNames)
            runOne(scenario, scheme, opt, unsec, static_gran);
        return 0;
    }
    for (const auto &[name, scheme] : kSchemeNames) {
        if (name == opt.scheme) {
            runOne(scenario, scheme, opt, unsec, static_gran);
            return 0;
        }
    }
    fatal("unknown scheme '%s'", opt.scheme.c_str());
}
