/**
 * @file
 * mgmee-serve: the long-running multi-tenant serving daemon.
 *
 * Brings up a serve::Server shaped by the process config (tenant
 * count, arena size, queue depth all from MGMEE_SERVE_* knobs; see
 * docs/API.md) and a framed unix-socket listener on
 * MGMEE_SERVE_SOCKET, then runs until a client sends a Shutdown
 * frame or the process receives SIGINT/SIGTERM.  On the way out it
 * writes a run manifest with per-tenant request counts, shed totals,
 * and batch-latency/detection-latency histograms -- the same report
 * an in-process embedding would get.
 *
 *   MGMEE_SERVE_TENANTS=8 MGMEE_SERVE_SOCKET=/tmp/s.sock mgmee-serve
 *   mgmee-loadgen --socket /tmp/s.sock --requests 100000 --shutdown
 */

#include <csignal>
#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "obs/manifest.hh"
#include "serve/net.hh"
#include "serve/server.hh"

using namespace mgmee;

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void
onSignal(int)
{
    g_signalled = 1;
}

} // namespace

int
main()
{
    const Config &cfg = config();
    const serve::SessionConfig session =
        serve::SessionConfig::fromConfig(cfg);

    serve::Server server(session);
    serve::Listener listener(server, cfg.serve_socket);
    std::fprintf(stderr,
                 "mgmee-serve: %u tenants on %u shards, socket %s\n",
                 server.tenantCount(), server.shards(),
                 listener.path().c_str());

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!listener.stopped() && !g_signalled)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));

    listener.stop();
    server.stop();

    obs::Manifest manifest("serve");
    server.fillManifest(manifest);
    obs::ManifestReporter::finalize(manifest);
    return 0;
}
