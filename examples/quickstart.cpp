/**
 * @file
 * Quickstart: protect a buffer with the multi-granular engine,
 * promote it to coarse granularity, and watch tampering and replay
 * get caught.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/multigran_memory.hh"

using namespace mgmee;

int
main()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(i * 3 + 5);
    keys.mac = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};

    // A 1MB protected region (32 chunks of 32KB).
    SecureMemory mem(32 * kChunkBytes, keys);

    // 1. Ordinary fine-grained (64B) protection.
    std::vector<std::uint8_t> secret(4096);
    for (std::size_t i = 0; i < secret.size(); ++i)
        secret[i] = static_cast<std::uint8_t>(i);
    mem.write(0, secret);

    std::vector<std::uint8_t> out(secret.size());
    mem.read(0, out);
    std::printf("fine-grained round trip: %s\n",
                out == secret ? "ok" : "FAILED");
    std::printf("granularity at 0x0: %s, counter=%llu\n",
                granularityName(mem.granularityAt(0)),
                static_cast<unsigned long long>(
                    mem.effectiveCounter(0)));

    // 2. Promote the first 4KB to a single shared counter + merged
    //    MAC (one metadata pair instead of 64).
    mem.applyStreamPart(0, subchunkMask(0));
    mem.read(0, out);
    std::printf("after 4KB promotion:     %s (granularity %s)\n",
                out == secret ? "ok" : "FAILED",
                granularityName(mem.granularityAt(0)));

    // 3. Tampering with any off-chip byte is detected by the merged
    //    (nested-hash) MAC.
    mem.corruptData(/*addr=*/1234, /*byte_index=*/7);
    auto st = mem.read(0, out);
    std::printf("tampered ciphertext:     detected=%s (%s)\n",
                st == SecureMemory::Status::Ok ? "NO" : "yes",
                SecureMemory::statusName(st));

    // Repair by rewriting the data.
    mem.write(0, secret);

    // 4. Replay: save the off-chip state, overwrite, restore.
    const auto stale = mem.captureForReplay(0);
    secret[0] ^= 0xff;
    mem.write(0, secret);
    mem.replay(stale);
    st = mem.read(0, out);
    std::printf("replayed stale data:     detected=%s (%s)\n",
                st == SecureMemory::Status::Ok ? "NO" : "yes",
                SecureMemory::statusName(st));

    // 5. Dynamic detection: a fresh memory that promotes itself.
    DynamicSecureMemory dyn(32 * kChunkBytes, keys);
    std::vector<std::uint8_t> line(kCachelineBytes, 0xab);
    Cycle now = 0;
    for (unsigned l = 0; l < kLinesPerChunk; ++l)
        dyn.write(l * kCachelineBytes, line, now++);
    dyn.read(0, out, now);  // lazy switch applies here
    std::printf("dynamic detection:       chunk 0 promoted to %s "
                "(%llu switch(es))\n",
                granularityName(dyn.memory().granularityAt(0)),
                static_cast<unsigned long long>(dyn.switchesApplied()));
    return 0;
}
