/**
 * @file
 * Security walkthrough: every attack from the threat model (Sec. 2.5)
 * against the functional engine, at every granularity.
 *
 *  - ciphertext tampering   -> MAC mismatch
 *  - MAC tampering          -> MAC mismatch
 *  - counter tampering      -> MAC/tree mismatch
 *  - replay (rollback)      -> tree mismatch (root is on-chip)
 *
 * Run: ./build/examples/tamper_detection
 */

#include <cstdio>
#include <vector>

#include "mee/secure_memory.hh"

using namespace mgmee;

namespace {

int g_failures = 0;

void
expectDetected(const char *what, SecureMemory::Status st)
{
    const bool detected = st != SecureMemory::Status::Ok;
    std::printf("  %-34s %s (%s)\n", what,
                detected ? "DETECTED" : "*** MISSED ***",
                SecureMemory::statusName(st));
    if (!detected)
        ++g_failures;
}

SecureMemory::Keys
demoKeys()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(0xA5 ^ (i * 29));
    keys.mac = {0x6d676d6565736563ULL, 0x75726974796b6579ULL};
    return keys;
}

} // namespace

int
main()
{
    std::vector<std::uint8_t> secret(kChunkBytes);
    for (std::size_t i = 0; i < secret.size(); ++i)
        secret[i] = static_cast<std::uint8_t>(i * 131 + 7);
    std::vector<std::uint8_t> out(kCachelineBytes);

    const StreamPart maps[] = {kAllFine, StreamPart{0b1},
                               subchunkMask(0), kAllStream};

    for (StreamPart sp : maps) {
        SecureMemory mem(8 * kChunkBytes, demoKeys());
        mem.write(0, secret);
        mem.applyStreamPart(0, sp);
        std::printf("granularity at 0x0: %s\n",
                    granularityName(mem.granularityAt(0)));

        // Baseline: intact data verifies and decrypts.
        auto st = mem.read(0, out);
        if (st != SecureMemory::Status::Ok ||
            out[5] != secret[5]) {
            std::printf("  *** round trip broken ***\n");
            ++g_failures;
        }

        // 1. Flip one ciphertext byte.  Coarse units detect it from
        //    ANY line of the unit (the merged MAC nests every fine
        //    MAC); fine granularity requires reading the line itself.
        mem.corruptData(3 * kCachelineBytes, 42);
        const Addr probe = sp == kAllFine ? 3 * kCachelineBytes : 0;
        expectDetected("ciphertext bit-flip", mem.read(probe, out));
        mem.write(0, secret);  // repair

        // 2. Flip a bit of the stored (possibly merged) MAC.
        mem.corruptMac(0);
        expectDetected("MAC bit-flip", mem.read(0, out));
        mem.write(0, secret);

        // 3. Flip the (possibly promoted) counter, unless it lives
        //    on-chip where the attacker cannot reach it.
        if (promotionLevels(mem.granularityAt(0)) <
            mem.layout().geometry().levels()) {
            mem.corruptCounter(0);
            expectDetected("counter bit-flip", mem.read(0, out));
            mem.write(0, secret);
        } else {
            std::printf("  %-34s (counter on-chip: out of the "
                        "attacker's reach)\n",
                        "counter bit-flip");
        }

        // 4. Replay: capture all off-chip state, overwrite, restore.
        const auto stale = mem.captureForReplay(0);
        auto fresh = secret;
        fresh[0] ^= 0xff;
        mem.write(0, fresh);
        mem.replay(stale);
        expectDetected("replay of stale snapshot", mem.read(0, out));

        std::printf("\n");
    }

    if (g_failures == 0) {
        std::printf("all attacks detected at every granularity.\n");
        return 0;
    }
    std::printf("%d attack(s) went undetected!\n", g_failures);
    return 1;
}
