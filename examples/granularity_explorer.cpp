/**
 * @file
 * Interactive tour of the dynamic granularity machinery: feed access
 * patterns to the tracker, watch Algorithm 1 classify them, and see
 * how the granularity table, address computation and MAC compaction
 * respond.
 *
 * Run: ./build/examples/granularity_explorer
 */

#include <cstdio>

#include "core/access_tracker.hh"
#include "core/address_computer.hh"
#include "core/granularity_table.hh"
#include "tree/layout.hh"

using namespace mgmee;

namespace {

void
printStreamPart(const char *label, StreamPart sp)
{
    std::printf("%-26s", label);
    for (unsigned p = 0; p < kPartitionsPerChunk; ++p)
        std::printf("%c", isStreamPartition(sp, p) ? '#' : '.');
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== 1. Access tracking and detection (Fig. 12 / "
                "Algorithm 1) ==\n\n");
    std::printf("Each 32KB chunk splits into 64 partitions of 512B "
                "(8 cachelines).\nA partition whose 8 lines are all "
                "touched within 16K cycles is a\n*stream partition* "
                "('#'):\n\n");

    AccessTracker tracker;
    StreamPart detected = 0;
    tracker.setEvictCallback([&](const AccessTracker::Eviction &ev) {
        detected = ev.stream_part;
    });

    // Pattern: stream partitions 0-7 (one 4KB subchunk), scatter a
    // few lines over partitions 16-31, stream partition 40.
    Cycle now = 0;
    for (unsigned l = 0; l < 64; ++l)
        tracker.recordAccess(l * kCachelineBytes, ++now);
    for (unsigned p = 16; p < 32; ++p)
        tracker.recordAccess(p * kPartitionBytes + 64, ++now);
    for (unsigned l = 0; l < 8; ++l)
        tracker.recordAccess(40 * kPartitionBytes +
                                 l * kCachelineBytes,
                             ++now);
    tracker.flush();

    printStreamPart("detected stream_part:", detected);
    std::printf("\nDerived protection granularity per region "
                "(hierarchical rule):\n");
    std::printf("  partitions 0-7   -> %s (full aligned group)\n",
                granularityName(granularityOfPartition(detected, 0)));
    std::printf("  partition  16    -> %s (sparse lines)\n",
                granularityName(granularityOfPartition(detected, 16)));
    std::printf("  partition  40    -> %s (single stream "
                "partition)\n",
                granularityName(granularityOfPartition(detected, 40)));

    std::printf("\n== 2. Lazy switching via the granularity table "
                "(Sec. 4.4) ==\n\n");
    MetadataLayout layout(64 * kChunkBytes);
    GranularityTable table(layout);
    table.setNext(0, detected);
    printStreamPart("current (before access):", table.current(0));
    const GranResolution res = table.resolveOnAccess(0, false);
    printStreamPart("current (after access):", table.current(0));
    std::printf("switch event: %s -> %s (charged per Table 2)\n",
                granularityName(res.from), granularityName(res.to));

    std::printf("\n== 3. Metadata addressing under the detected map "
                "(Eqs. 1-4, Fig. 9) ==\n\n");
    AddressComputer ac(layout);
    std::printf("MACs per chunk: %llu (vs 512 fine-grained; "
                "compacted to the slab front)\n",
                static_cast<unsigned long long>(
                    AddressComputer::macsPerChunk(detected)));
    for (Addr a : {Addr{0}, Addr{17 * kPartitionBytes},
                   Addr{40 * kPartitionBytes}}) {
        const MacLoc mac = ac.macLoc(a, detected);
        const CounterLoc ctr = ac.counterLoc(a, detected);
        std::printf("  data 0x%06llx: MAC idx %llu @0x%llx | "
                    "counter level %u idx %llu%s\n",
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(mac.index),
                    static_cast<unsigned long long>(mac.line_addr),
                    ctr.level,
                    static_cast<unsigned long long>(ctr.index),
                    ctr.on_chip ? " (on-chip)" : "");
    }

    std::printf("\nPromoted counters live %u/%u/%u levels up the "
                "8-ary tree for 512B/4KB/32KB units\n(Eq. 2: "
                "Parents = log8(granularity / 64B)).\n",
                promotionLevels(Granularity::Part512B),
                promotionLevels(Granularity::Sub4KB),
                promotionLevels(Granularity::Chunk32KB));
    return 0;
}
