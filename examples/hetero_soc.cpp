/**
 * @file
 * End-to-end heterogeneous-SoC simulation: build the Orin-like system
 * (CPU + GPU + 2 NPUs, Table 3), run one scenario under several
 * protection schemes, and print the paper's metrics.
 *
 * Usage:
 *   ./build/examples/hetero_soc [scenario-id]
 * where scenario-id is one of the 11 selected scenarios (ff1..cc3),
 * "finance", "autodrive", or any "cpu+gpu+npu+npu" combination such
 * as "xal+mm+alex+dlrm".  Default: cc1.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "hetero/hetero_system.hh"
#include "hetero/metrics.hh"

using namespace mgmee;

namespace {

Scenario
parseScenario(const std::string &arg)
{
    for (const Scenario &s : selectedScenarios())
        if (s.id == arg)
            return s;
    if (arg == "finance")
        return financeScenario();
    if (arg == "autodrive")
        return autodriveScenario();

    // "cpu+gpu+npu1+npu2" free-form spec.
    std::vector<std::string> parts;
    std::size_t pos = 0;
    std::string rest = arg;
    while ((pos = rest.find('+')) != std::string::npos) {
        parts.push_back(rest.substr(0, pos));
        rest.erase(0, pos + 1);
    }
    parts.push_back(rest);
    if (parts.size() == 4)
        return {arg, parts[0], parts[1], parts[2], parts[3]};
    fatal("unknown scenario '%s' (try cc1, ff1, finance, "
          "or cpu+gpu+npu+npu)",
          arg.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Scenario scenario =
        parseScenario(argc > 1 ? argv[1] : "cc1");

    std::printf("scenario %s: CPU=%s GPU=%s NPU1=%s NPU2=%s\n\n",
                scenario.id.c_str(), scenario.cpu.c_str(),
                scenario.gpu.c_str(), scenario.npu1.c_str(),
                scenario.npu2.c_str());

    const RunResult unsec =
        runScenario(scenario, Scheme::Unsecure, /*seed=*/1,
                    /*scale=*/1.0);

    std::printf("%-20s %10s %10s %12s %s\n", "scheme", "norm.exec",
                "traffic", "sec.misses", "per-device exec");
    for (Scheme scheme : kMainSchemes) {
        std::array<Granularity, 8> static_gran{};
        if (scheme == Scheme::StaticDeviceBest)
            static_gran = searchStaticBest(scenario, 1, 1.0);
        HeteroSystem sys(buildDevices(scenario, 1, 1.0),
                         makeEngine(scheme, scenarioDataBytes(),
                                    static_gran));
        sys.run();
        RunResult r;
        r.device_finish = sys.deviceFinishTimes();
        r.total_bytes = sys.mem().totalBytes();
        r.security_misses = sys.engine().securityCacheMisses();
        std::printf("%-20s %9.3fx %9.3fx %12llu  [",
                    schemeName(scheme), normalizedExecTime(r, unsec),
                    static_cast<double>(r.total_bytes) /
                        unsec.total_bytes,
                    static_cast<unsigned long long>(
                        r.security_misses));
        const auto per_dev = normalizedPerDevice(r, unsec);
        for (std::size_t d = 0; d < per_dev.size(); ++d)
            std::printf("%s%.3f", d ? " " : "", per_dev[d]);
        std::printf("]  read-lat %s\n",
                    sys.readLatency().summary().c_str());
    }

    std::printf("\nAll values are normalized to the unsecured "
                "system; lower is better.\n");
    return 0;
}
