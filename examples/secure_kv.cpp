/**
 * @file
 * A tiny persistent-style key-value store built on the protected
 * memory API -- the kind of substrate a TEE application would use.
 *
 * Layout inside one SecureMemory region:
 *   [0, 64)                      header (magic, entry count)
 *   [64, 64 + N*128)             entries: 32B key + 92B value + len
 *
 * Every get/put round trips through encryption, MAC verification and
 * the integrity tree; the demo also shows that an off-chip attacker
 * cannot flip a stored value or roll back a deleted secret without
 * detection.
 *
 * Run: ./build/examples/secure_kv
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/multigran_memory.hh"

using namespace mgmee;

namespace {

/** Fixed-slot KV store over protected memory. */
class SecureKv
{
  public:
    static constexpr unsigned kMaxEntries = 64;
    static constexpr unsigned kKeyBytes = 32;
    static constexpr unsigned kValueBytes = 92;

    explicit SecureKv(SecureMemory &mem) : mem_(mem) {}

    bool
    put(const std::string &key, const std::string &value)
    {
        if (key.size() >= kKeyBytes || value.size() >= kValueBytes)
            return false;
        int slot = find(key);
        if (slot < 0)
            slot = find("");  // first free slot
        if (slot < 0)
            return false;

        Entry e{};
        std::memcpy(e.key, key.data(), key.size());
        std::memcpy(e.value, value.data(), value.size());
        e.len = static_cast<std::uint32_t>(value.size());
        return writeEntry(static_cast<unsigned>(slot), e);
    }

    std::optional<std::string>
    get(const std::string &key)
    {
        const int slot = find(key);
        if (slot < 0)
            return std::nullopt;
        Entry e{};
        if (!readEntry(static_cast<unsigned>(slot), e))
            return std::nullopt;   // integrity failure
        return std::string(e.value, e.len);
    }

    bool
    erase(const std::string &key)
    {
        const int slot = find(key);
        if (slot < 0)
            return false;
        return writeEntry(static_cast<unsigned>(slot), Entry{});
    }

    /** Address of a key's slot (for the attack demo). */
    Addr
    slotAddr(const std::string &key)
    {
        const int slot = find(key);
        return slot < 0 ? 0
                        : 64 + static_cast<Addr>(slot) *
                                   sizeof(Entry);
    }

  private:
    struct Entry
    {
        char key[kKeyBytes];
        char value[kValueBytes];
        std::uint32_t len;
    };
    static_assert(sizeof(Entry) == 128);

    int
    find(const std::string &key)
    {
        for (unsigned s = 0; s < kMaxEntries; ++s) {
            Entry e{};
            if (!readEntry(s, e))
                continue;
            if (key.size() < kKeyBytes &&
                std::strncmp(e.key, key.c_str(), kKeyBytes) == 0)
                return static_cast<int>(s);
        }
        return -1;
    }

    bool
    readEntry(unsigned slot, Entry &e)
    {
        std::uint8_t buf[sizeof(Entry)];
        if (mem_.read(64 + slot * sizeof(Entry), buf) !=
            SecureMemory::Status::Ok)
            return false;
        std::memcpy(&e, buf, sizeof(Entry));
        return true;
    }

    bool
    writeEntry(unsigned slot, const Entry &e)
    {
        std::uint8_t buf[sizeof(Entry)];
        std::memcpy(buf, &e, sizeof(Entry));
        return mem_.write(64 + slot * sizeof(Entry), buf) ==
               SecureMemory::Status::Ok;
    }

    SecureMemory &mem_;
};

} // namespace

int
main()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(i * 37 + 5);
    keys.mac = {0x6b7673746f726531ULL, 0x6d676d6565646d6fULL};

    SecureMemory mem(kChunkBytes, keys);
    SecureKv kv(mem);

    std::printf("== secure key-value store on protected memory ==\n");
    kv.put("api-token", "sk-live-3e7a99c0ffee");
    kv.put("db-password", "correct horse battery staple");
    kv.put("feature-flag", "rollout=25%");

    std::printf("get(api-token)    = %s\n",
                kv.get("api-token").value_or("<integrity fail>")
                    .c_str());
    std::printf("get(db-password)  = %s\n",
                kv.get("db-password").value_or("<integrity fail>")
                    .c_str());

    // Update in place.
    kv.put("feature-flag", "rollout=100%");
    std::printf("get(feature-flag) = %s\n",
                kv.get("feature-flag").value_or("<integrity fail>")
                    .c_str());

    // 1. An off-chip attacker flips one bit of the stored password.
    const Addr victim = kv.slotAddr("db-password");
    mem.corruptData(victim + SecureKv::kKeyBytes, 0);
    const auto tampered = kv.get("db-password");
    std::printf("after bit-flip    = %s\n",
                tampered ? tampered->c_str()
                         : "<integrity fail> (attack detected)");

    // Repair and verify normal operation resumes.
    kv.put("db-password", "correct horse battery staple");
    std::printf("after repair      = %s\n",
                kv.get("db-password").value_or("<integrity fail>")
                    .c_str());

    // 2. Rollback attack: snapshot a secret, rotate it, replay the
    //    old off-chip state.
    const Addr token_addr = kv.slotAddr("api-token");
    const auto stale = mem.captureForReplay(token_addr +
                                            SecureKv::kKeyBytes);
    kv.put("api-token", "sk-live-ROTATED-0042");
    mem.replay(stale);
    const auto rolled = kv.get("api-token");
    std::printf("after rollback    = %s\n",
                rolled ? rolled->c_str()
                       : "<integrity fail> (replay detected)");

    return 0;
}
